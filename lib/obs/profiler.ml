(* Self-profiler: where does the *host* spend wall-clock and allocation
   while simulating?

   The profiler is an ordinary span sink plus a Simulator dispatch
   observer — it never advances virtual time, so installing it cannot
   change simulation results (the same contract every other sink obeys).

   Attribution works on host-time *segments*. Spans arrive at their
   close, children before parents (a post-order traversal of the real
   call tree), so the host work performed since the previous transition
   point — the previous span close, or a dispatch hook — is charged as
   the closing span's *exclusive* cost. Segment boundaries share one
   running clock read, so the sum of all exclusive charges telescopes to
   exactly the profiled region's measured wall time; `svt_sim profile
   --validate` asserts that invariant to within 5%.

   Tree structure is recovered from virtual time: a per-vCPU pending
   list holds closed spans awaiting their parent, and a newly closed
   span adopts every pending span it encloses. Spans nothing encloses
   (vm-exit episodes, halts) fold into the aggregate tree under a
   per-vCPU root once the pending list outgrows its cap, and at [stop].

   Allocation is charged per segment from the minor-allocation counter
   (the cheap, monotonic part of [Gc.quick_stat]); whole-run totals
   including major-heap words come from full [Gc.quick_stat] deltas at
   [start]/[stop]. *)

module Simulator = Svt_engine.Simulator

type node = {
  mutable calls : int;
  mutable excl_s : float; (* exclusive host seconds *)
  mutable excl_w : float; (* exclusive allocated words (minor counter) *)
  kids : (string, node) Hashtbl.t;
}

let new_node () = { calls = 0; excl_s = 0.0; excl_w = 0.0; kids = Hashtbl.create 4 }

let rec merge_into ~(dst : node) (src : node) =
  dst.calls <- dst.calls + src.calls;
  dst.excl_s <- dst.excl_s +. src.excl_s;
  dst.excl_w <- dst.excl_w +. src.excl_w;
  Hashtbl.iter (fun label kid -> attach dst label kid) src.kids

and attach parent label kid =
  match Hashtbl.find_opt parent.kids label with
  | Some existing -> merge_into ~dst:existing kid
  | None -> Hashtbl.add parent.kids label kid

(* A closed span awaiting its (virtually enclosing) parent. *)
type pitem = { start : Svt_engine.Time.t; stop : Svt_engine.Time.t; node : node;
               label : string }

type t = {
  clock : unit -> float; (* host seconds *)
  words : unit -> float; (* allocated words so far (monotonic) *)
  root : node;
  engine_queue : node; (* between-event engine bookkeeping *)
  engine_dispatch : node; (* in-event work after the last span close *)
  engine_other : node; (* outside the event loop (setup, metric assembly) *)
  pending : (int, pitem list ref) Hashtbl.t; (* per vcpu, arrival order *)
  mutable running : bool;
  mutable in_event : bool;
  mutable seg_clock : float;
  mutable seg_words : float;
  mutable t_start : float;
  mutable t_stop : float;
  mutable gc_start : Gc.stat option;
  mutable alloc_words : float; (* quick_stat delta, set at stop *)
  mutable spans : int;
  mutable events : int;
}

(* Cap on closed spans waiting for a parent, per vCPU. Episodes are a
   handful of legs deep; anything older than the cap is an episode root
   and folds into the aggregate tree. *)
let max_pending = 64

let default_clock = Unix.gettimeofday
let default_words () = Gc.minor_words ()

let create ?(clock = default_clock) ?(words = default_words) () =
  let t =
    {
      clock; words;
      root = new_node ();
      engine_queue = new_node ();
      engine_dispatch = new_node ();
      engine_other = new_node ();
      pending = Hashtbl.create 8;
      running = false; in_event = false;
      seg_clock = 0.0; seg_words = 0.0;
      t_start = 0.0; t_stop = 0.0;
      gc_start = None; alloc_words = 0.0;
      spans = 0; events = 0;
    }
  in
  let engine = new_node () in
  attach t.root "engine" engine;
  attach engine "queue" t.engine_queue;
  attach engine "dispatch" t.engine_dispatch;
  attach engine "other" t.engine_other;
  t

(* Close the current host-time segment, charging it exclusively to
   [node]. One clock read ends this segment and starts the next, so the
   charges telescope: their sum is exactly (last read - t_start). *)
let segment t node =
  let now = t.clock () in
  let w = t.words () in
  node.excl_s <- node.excl_s +. (now -. t.seg_clock);
  node.excl_w <- node.excl_w +. (w -. t.seg_words);
  t.seg_clock <- now;
  t.seg_words <- w

(* The discriminating tags that name a handler path (the same set the
   coverage map keys on); numeric payload tags are deliberately not
   part of the identity. *)
let key_tags = [ "reason"; "mode"; "leg"; "cause"; "dir"; "cmd"; "outcome" ]

let sanitize v =
  String.map (function ';' | ' ' | '\n' | '\t' -> '_' | c -> c) v

let label_of_span (sp : Span.t) =
  let vals = List.filter_map (fun k -> Span.tag sp k) key_tags in
  let vals =
    match Span.tag sp "error" with
    | Some _ -> vals @ [ "ERR" ]
    | None -> vals
  in
  match vals with
  | [] -> Span.kind_name sp.Span.kind
  | vs ->
      Span.kind_name sp.Span.kind ^ ":" ^ sanitize (String.concat "," vs)

let vcpu_label vcpu =
  if vcpu < 0 then "host" else Printf.sprintf "vcpu%d" vcpu

let pending_for t vcpu =
  match Hashtbl.find_opt t.pending vcpu with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.pending vcpu r;
      r

let fold_root t vcpu (p : pitem) =
  let vnode =
    match Hashtbl.find_opt t.root.kids (vcpu_label vcpu) with
    | Some n -> n
    | None ->
        let n = new_node () in
        Hashtbl.add t.root.kids (vcpu_label vcpu) n;
        n
  in
  attach vnode p.label p.node

let sink t (sp : Span.t) =
  if t.running then begin
    let node = new_node () in
    node.calls <- 1;
    segment t node;
    t.spans <- t.spans + 1;
    let lst = pending_for t sp.Span.vcpu in
    (* adopt every pending span this one (virtually) encloses *)
    let mine, rest =
      List.partition
        (fun (p : pitem) ->
          sp.Span.start <= p.start && p.stop <= sp.Span.stop)
        !lst
    in
    List.iter (fun (p : pitem) -> attach node p.label p.node) mine;
    let item =
      { start = sp.Span.start; stop = sp.Span.stop; node;
        label = label_of_span sp }
    in
    let rest = rest @ [ item ] in
    (* bound memory: the oldest pending spans past the cap are episode
       roots nothing will enclose — fold them now *)
    let overflow = List.length rest - max_pending in
    if overflow > 0 then begin
      let folded = List.filteri (fun i _ -> i < overflow) rest in
      List.iter (fun p -> fold_root t sp.Span.vcpu p) folded;
      lst := List.filteri (fun i _ -> i >= overflow) rest
    end
    else lst := rest
  end

let observer t =
  {
    Simulator.on_event_start =
      (fun () ->
        if t.running then begin
          segment t t.engine_queue;
          t.in_event <- true;
          t.events <- t.events + 1
        end);
    on_event_end =
      (fun () ->
        if t.running then begin
          segment t t.engine_dispatch;
          t.in_event <- false
        end);
  }

let start t =
  t.gc_start <- Some (Gc.quick_stat ());
  t.t_start <- t.clock ();
  t.seg_clock <- t.t_start;
  t.seg_words <- t.words ();
  t.running <- true

let stop t =
  if t.running then begin
    segment t t.engine_other;
    t.running <- false;
    t.t_stop <- t.seg_clock;
    (match t.gc_start with
    | Some g0 ->
        let g1 = Gc.quick_stat () in
        t.alloc_words <-
          g1.Gc.minor_words -. g0.Gc.minor_words
          +. (g1.Gc.major_words -. g0.Gc.major_words)
          -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
    | None -> ());
    Hashtbl.iter
      (fun vcpu lst ->
        List.iter (fun p -> fold_root t vcpu p) !lst;
        lst := [])
      t.pending
  end

(* ---- summary accessors ---- *)

let wall_s t =
  (if t.running then t.clock () else t.t_stop) -. t.t_start

let rec excl_total_s (n : node) =
  Hashtbl.fold (fun _ kid acc -> acc +. excl_total_s kid) n.kids n.excl_s

let exclusive_total_s t = excl_total_s t.root
let spans t = t.spans
let events t = t.events
let word_bytes = Sys.word_size / 8
let allocated_bytes t = t.alloc_words *. float_of_int word_bytes

(* ---- folded stacks ---- *)

type metric = Mtime | Malloc

(* One line per tree path: "frame;frame;frame <integer>", the format
   flamegraph.pl / speedscope / inferno all load. The value is exclusive
   nanoseconds (or exclusive allocated bytes with [Malloc]); inclusive
   times are what the flamegraph tools derive by summation. *)
let folded ?(metric = Mtime) t =
  let b = Buffer.create 4096 in
  let value (n : node) =
    match metric with
    | Mtime -> Float.round (n.excl_s *. 1e9)
    | Malloc -> Float.round (n.excl_w *. float_of_int word_bytes)
  in
  let rec walk path n =
    let v = value n in
    if v >= 1.0 && path <> [] then
      Buffer.add_string b
        (Printf.sprintf "%s %.0f\n" (String.concat ";" (List.rev path)) v);
    let kids =
      Hashtbl.fold (fun label kid acc -> (label, kid) :: acc) n.kids []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter (fun (label, kid) -> walk (label :: path) kid) kids
  in
  walk [] t.root;
  Buffer.contents b

let write_folded ?metric t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (folded ?metric t))

(* ---- flat rows (table / json) ---- *)

type row = {
  path : string;
  calls : int;
  excl_ns : float;
  incl_ns : float;
  excl_bytes : float;
}

let rows t =
  let acc = ref [] in
  let rec walk path n =
    let incl = excl_total_s n in
    if path <> [] then
      acc :=
        {
          path = String.concat ";" (List.rev path);
          calls = n.calls;
          excl_ns = n.excl_s *. 1e9;
          incl_ns = incl *. 1e9;
          excl_bytes = n.excl_w *. float_of_int word_bytes;
        }
        :: !acc;
    Hashtbl.iter (fun label kid -> walk (label :: path) kid) n.kids
  in
  walk [] t.root;
  List.sort (fun a b -> compare b.excl_ns a.excl_ns) !acc

let pp_table ?(limit = 40) ppf t =
  let rows = rows t in
  let shown = List.filteri (fun i _ -> i < limit) rows in
  Format.fprintf ppf "%12s %12s %9s %12s  %s@." "excl (us)" "incl (us)"
    "calls" "alloc (KB)" "path";
  List.iter
    (fun r ->
      Format.fprintf ppf "%12.1f %12.1f %9d %12.1f  %s@." (r.excl_ns /. 1e3)
        (r.incl_ns /. 1e3) r.calls (r.excl_bytes /. 1e3) r.path)
    shown;
  if List.length rows > limit then
    Format.fprintf ppf "  ... %d more paths@." (List.length rows - limit)

let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_json ?(extra = []) t =
  let b = Buffer.create 4096 in
  let rec node_json label (n : node) =
    Buffer.add_string b "{\"name\":";
    buf_string b label;
    Buffer.add_string b
      (Printf.sprintf ",\"calls\":%d,\"excl_ns\":%.0f,\"excl_bytes\":%.0f"
         n.calls (n.excl_s *. 1e9) (n.excl_w *. float_of_int word_bytes));
    let kids =
      Hashtbl.fold (fun l kid acc -> (l, kid) :: acc) n.kids []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    if kids <> [] then begin
      Buffer.add_string b ",\"children\":[";
      List.iteri
        (fun i (l, kid) ->
          if i > 0 then Buffer.add_char b ',';
          node_json l kid)
        kids
    end;
    if kids <> [] then Buffer.add_char b ']';
    Buffer.add_char b '}'
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"profile\":\"svt\",\"wall_ns\":%.0f,\"excl_total_ns\":%.0f,\
        \"spans\":%d,\"events\":%d,\"allocated_bytes\":%.0f"
       (wall_s t *. 1e9)
       (exclusive_total_s t *. 1e9)
       t.spans t.events (allocated_bytes t));
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      buf_string b k;
      Buffer.add_string b (Printf.sprintf ":%.17g" v))
    extra;
  Buffer.add_string b ",\"tree\":";
  node_json "root" t.root;
  Buffer.add_string b "}\n";
  Buffer.contents b
