(** Process-wide telemetry registry: named counters, gauges and
    histograms that long-running campaigns update as they go and
    periodically snapshot into ledger heartbeat rows (see
    [Svt_campaign.Heartbeat]).

    Cells are created on first use; using one name with two different
    kinds raises [Invalid_argument]. *)

type t

val create : unit -> t

val global : t
(** The shared instance the CLI drivers use. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a counter (created at 0). *)

val set : t -> string -> float -> unit
(** Set a gauge. *)

val observe : t -> string -> int -> unit
(** Record one histogram sample (non-negative integer, e.g. a latency
    in ns). *)

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> float
(** 0.0 when absent. *)

val snapshot : t -> (string * float) list
(** Flat, name-sorted view: counters and gauges verbatim; each non-empty
    histogram as [name.count] / [name.mean] / [name.p99]. Sorted so
    snapshot-bearing ledger rows are byte-stable for a given state. *)

val reset : t -> unit
