(* The per-machine observability bundle: one probe for the instrumented
   hot paths, the bounded text-annotation ring (the old Machine.trace,
   now one sink among several), and the optional structured sinks.
   Freshly created recorders have no span sink installed — the null-sink
   state — so observability is free until someone asks for it. *)

module Time = Svt_engine.Time
module Trace = Svt_engine.Trace

type t = {
  probe : Probe.t;
  clock : unit -> Time.t;
  ring : Trace.t; (* bounded in-memory sink for text annotations *)
  mutable timeline : Timeline.t option;
  mutable chrome : Chrome_trace.t option;
}

let create ?(ring_capacity = 4096) ~clock () =
  {
    probe = Probe.create ~clock ();
    clock;
    ring = Trace.create ~capacity:ring_capacity ();
    timeline = None;
    chrome = None;
  }

let probe t = t.probe
let now t = t.clock ()
let ring t = t.ring

(* Formatted text annotation into the bounded ring (the legacy
   Machine.trace surface). *)
let annotate t ~tag fmt = Trace.recordf t.ring ~time:(t.clock ()) ~tag fmt

let set_enabled t flag =
  Probe.set_armed t.probe flag;
  Trace.set_enabled t.ring flag

(* Install-once sink accessors: the first call creates and subscribes,
   later calls return the same sink. *)
let enable_timeline ?capacity t =
  match t.timeline with
  | Some tl -> tl
  | None ->
      let tl = Timeline.create ?capacity () in
      Probe.subscribe t.probe (Timeline.sink tl);
      t.timeline <- Some tl;
      tl

let enable_chrome ?limit t =
  match t.chrome with
  | Some ct -> ct
  | None ->
      let ct = Chrome_trace.create ?limit () in
      Probe.subscribe t.probe (Chrome_trace.sink ct);
      t.chrome <- Some ct;
      ct

let timeline t = t.timeline
let chrome t = t.chrome
