(* Sink 3, the ledger bridge: flatten per-span-kind timeline summaries
   into flat (name, value) metric fields, the shape Campaign.Ledger
   stores and sweep-diff compares. Field names are stable:
   obs.<kind>.count / .mean_ns / .p99_ns / .total_ns. *)

let field_name kind stat = Printf.sprintf "obs.%s.%s" (Span.kind_name kind) stat

let fields_of_summary (s : Timeline.summary) =
  [
    (field_name s.Timeline.kind "count", float_of_int s.Timeline.count);
    (field_name s.Timeline.kind "mean_ns", s.Timeline.mean_ns);
    (field_name s.Timeline.kind "p99_ns", float_of_int s.Timeline.p99_ns);
    (field_name s.Timeline.kind "total_ns", float_of_int s.Timeline.total_ns);
  ]

(* Only kinds that recorded at least one span: ledgers stay compact and
   sweep-diff reports a field appearing/vanishing as a real change. *)
let fields timeline =
  List.concat_map fields_of_summary (Timeline.summaries timeline)

(* Recover the per-kind summaries from a flat metric list (e.g. a ledger
   row read back from disk); inverse of [fields] up to float precision. *)
let summaries_of_fields metrics =
  List.filter_map
    (fun kind ->
      match List.assoc_opt (field_name kind "count") metrics with
      | None -> None
      | Some count ->
          let get stat =
            Option.value ~default:Float.nan
              (List.assoc_opt (field_name kind stat) metrics)
          in
          Some
            {
              Timeline.kind;
              count = int_of_float count;
              mean_ns = get "mean_ns";
              p99_ns = int_of_float (get "p99_ns");
              max_ns = 0;
              total_ns = int_of_float (get "total_ns");
            })
    Span.all_kinds
