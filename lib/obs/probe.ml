(* The emitter side of the observability layer. A probe decouples the
   instrumented hot paths from whatever sinks are (or are not) installed:
   emitters ask [is_on] — a single bool-and-list test — and skip all span
   construction when nobody listens, so the default (null-sink) state
   costs one branch per site and never perturbs the simulation. *)

module Time = Svt_engine.Time

type t = {
  clock : unit -> Time.t;
  mutable subs : (Span.t -> unit) list;
  mutable armed : bool; (* master switch, independent of subscribers *)
  sealed : bool; (* the shared null probe refuses subscribers *)
}

let create ~clock () = { clock; subs = []; armed = true; sealed = false }

let null =
  { clock = (fun () -> Time.zero); subs = []; armed = false; sealed = true }

let is_on t = t.armed && t.subs <> []
let now t = t.clock ()
let set_armed t flag = t.armed <- flag

let subscribe t sink =
  if t.sealed then invalid_arg "Probe.subscribe: the null probe is sealed";
  t.subs <- t.subs @ [ sink ]

let subscriber_count t = List.length t.subs

let emit t span = if is_on t then List.iter (fun sink -> sink span) t.subs

(* Emit a span ending now. No-op (and no allocation beyond the already
   evaluated arguments) when the probe is off. [core]/[ctx] pin the span
   to a hardware lane; the -1 default keeps it on the per-vCPU track. *)
let span t kind ~vcpu ~level ?(core = -1) ?(ctx = -1) ?(tags = []) ~start () =
  if is_on t then
    emit t { Span.kind; vcpu; level; core; ctx; start; stop = t.clock (); tags }

(* Run [f] inside a span of [kind]; tags are computed only on emission so
   the off path pays nothing but the branch. Exception-safe: a raising
   thunk still emits its span — tagged ["error"] — before the exception
   continues, so faulted and fuzzed paths appear in traces and profiles
   instead of silently vanishing. *)
let wrap t kind ~vcpu ~level ?(core = -1) ?(ctx = -1) ?(tags = fun () -> []) f =
  if not (is_on t) then f ()
  else begin
    let start = t.clock () in
    match f () with
    | result ->
        emit t
          { Span.kind; vcpu; level; core; ctx; start; stop = t.clock ();
            tags = tags () };
        result
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        emit t
          { Span.kind; vcpu; level; core; ctx; start; stop = t.clock ();
            tags = ("error", Printexc.to_string e) :: tags () };
        Printexc.raise_with_backtrace e bt
  end
