(** Probe: the emitter handle of the observability layer.

    Instrumented hot paths hold a probe and emit {!Span.t}s through it;
    sinks subscribe without the emitters knowing. With no subscriber (the
    null-sink state, the default) every operation short-circuits on a
    single test, so instrumentation is safe to leave in hot paths. Probes
    never advance virtual time: installing or removing sinks cannot
    change simulation results. *)

module Time = Svt_engine.Time

type t

val create : clock:(unit -> Time.t) -> unit -> t
(** [clock] supplies span timestamps (normally the owning machine's
    simulator clock). *)

val null : t
(** A sealed, permanently-off probe; {!subscribe} on it raises. Useful
    as a default for components constructed outside a machine. *)

val is_on : t -> bool
(** True iff armed and at least one subscriber is installed. Emitters
    use this to skip span/tag construction entirely. *)

val now : t -> Time.t
(** The probe's clock ([Time.zero] on {!null}). *)

val set_armed : t -> bool -> unit
(** Master switch: when disarmed the probe reports [is_on = false] even
    with subscribers installed. *)

val subscribe : t -> (Span.t -> unit) -> unit
(** Install a sink; called once per emitted span, in subscription
    order. *)

val subscriber_count : t -> int
val emit : t -> Span.t -> unit

val span :
  t ->
  Span.kind ->
  vcpu:int ->
  level:int ->
  ?core:int ->
  ?ctx:int ->
  ?tags:(string * string) list ->
  start:Time.t ->
  unit ->
  unit
(** Emit a span from [start] to the probe's current clock. [core]/[ctx]
    pin it to a hardware lane (one Perfetto track per hardware thread);
    the -1 defaults keep it on the per-vCPU track. *)

val wrap :
  t ->
  Span.kind ->
  vcpu:int ->
  level:int ->
  ?core:int ->
  ?ctx:int ->
  ?tags:(unit -> (string * string) list) ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a span; [tags] is only evaluated on emission.
    If the thunk raises, the span is still emitted — with an ["error"]
    tag holding [Printexc.to_string] of the exception, prepended to the
    computed tags — and the exception is re-raised with its original
    backtrace. *)
