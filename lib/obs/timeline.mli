(** Sink 1: per-vCPU span timelines plus per-span-kind latency
    histograms, queryable at end of run.

    Each vCPU keeps a bounded ring of its most recent spans; the
    per-kind {!Svt_stats.Histogram}s and time totals see every span
    regardless of wraparound, so summaries stay exact on long runs. *)

module Time = Svt_engine.Time
module Histogram = Svt_stats.Histogram

type t

type summary = {
  kind : Span.kind;
  count : int;
  mean_ns : float;
  p99_ns : int;
  max_ns : int;
  total_ns : int;
}

val create : ?capacity:int -> unit -> t
(** [capacity] bounds each vCPU's retained-span ring (default 4096). *)

val sink : t -> Span.t -> unit
(** The subscriber to install on a probe. *)

val total_spans : t -> int
val vcpus : t -> int list

val recorded : t -> vcpu:int -> int
(** Spans ever recorded for this vCPU (≥ retained). *)

val iter : t -> vcpu:int -> (Span.t -> unit) -> unit
(** Retained spans of one vCPU, oldest first, without allocation. *)

val spans : t -> vcpu:int -> Span.t list
(** Retained spans of one vCPU, oldest first. *)

val histogram : t -> Span.kind -> Histogram.t
val count : t -> Span.kind -> int
val total_time : t -> Span.kind -> Time.t
val summary : t -> Span.kind -> summary

val summaries : t -> summary list
(** Non-empty kinds only, in kind order. *)

val pp_summary : Format.formatter -> summary -> unit
val pp : Format.formatter -> t -> unit
