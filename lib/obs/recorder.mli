(** The per-machine observability bundle: one {!Probe} for the
    instrumented hot paths, the bounded {!Svt_engine.Trace} ring for
    text annotations, and optional structured sinks ({!Timeline},
    {!Chrome_trace}) installed on demand.

    A fresh recorder has no span sink — the null-sink state: every
    probe site short-circuits and the simulation is bit-identical to an
    unobserved one. *)

module Time = Svt_engine.Time
module Trace = Svt_engine.Trace

type t

val create : ?ring_capacity:int -> clock:(unit -> Time.t) -> unit -> t
val probe : t -> Probe.t
val now : t -> Time.t

val ring : t -> Trace.t
(** The bounded text-annotation ring (the legacy [Machine.trace]
    storage). *)

val annotate :
  t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted text annotation into the ring. *)

val set_enabled : t -> bool -> unit
(** Master switch: disarms the probe and the annotation ring. *)

val enable_timeline : ?capacity:int -> t -> Timeline.t
(** Install (once) and return the per-vCPU timeline sink. *)

val enable_chrome : ?limit:int -> t -> Chrome_trace.t
(** Install (once) and return the Chrome trace-event sink. *)

val timeline : t -> Timeline.t option
val chrome : t -> Chrome_trace.t option
