(* Sink 1: per-vCPU span timelines plus per-span-kind latency histograms,
   queryable at end of run. Each vCPU keeps a bounded ring of recent
   spans (the assertion surface for ordering/nesting tests); histograms
   and totals see every span regardless of ring wraparound. *)

module Time = Svt_engine.Time
module Histogram = Svt_stats.Histogram

type ring = {
  spans : Span.t option array;
  mutable next : int;
  mutable recorded : int;
}

type summary = {
  kind : Span.kind;
  count : int;
  mean_ns : float;
  p99_ns : int;
  max_ns : int;
  total_ns : int;
}

type t = {
  capacity : int; (* per-vCPU ring capacity *)
  rings : (int, ring) Hashtbl.t;
  hists : Histogram.t array; (* one per span kind *)
  totals : int array; (* accumulated ns per span kind *)
  mutable total_spans : int;
}

let create ?(capacity = 4096) () =
  {
    capacity;
    rings = Hashtbl.create 8;
    hists = Array.init Span.n_kinds (fun _ -> Histogram.create ());
    totals = Array.make Span.n_kinds 0;
    total_spans = 0;
  }

let ring_for t vcpu =
  match Hashtbl.find_opt t.rings vcpu with
  | Some r -> r
  | None ->
      let r = { spans = Array.make t.capacity None; next = 0; recorded = 0 } in
      Hashtbl.add t.rings vcpu r;
      r

(* The subscriber function to install on a probe. *)
let sink t (s : Span.t) =
  let r = ring_for t s.Span.vcpu in
  r.spans.(r.next) <- Some s;
  r.next <- (r.next + 1) mod Array.length r.spans;
  r.recorded <- r.recorded + 1;
  let k = Span.kind_index s.Span.kind in
  let ns = Span.duration_ns s in
  Histogram.add t.hists.(k) (max 0 ns);
  t.totals.(k) <- t.totals.(k) + ns;
  t.total_spans <- t.total_spans + 1

let total_spans t = t.total_spans

let vcpus t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.rings [] |> List.sort compare

let recorded t ~vcpu =
  match Hashtbl.find_opt t.rings vcpu with Some r -> r.recorded | None -> 0

(* Retained spans of one vCPU, oldest first (at most [capacity]). *)
let iter t ~vcpu f =
  match Hashtbl.find_opt t.rings vcpu with
  | None -> ()
  | Some r ->
      let n = Array.length r.spans in
      for i = 0 to n - 1 do
        match r.spans.((r.next + i) mod n) with
        | Some s -> f s
        | None -> ()
      done

let spans t ~vcpu =
  let acc = ref [] in
  iter t ~vcpu (fun s -> acc := s :: !acc);
  List.rev !acc

let histogram t kind = t.hists.(Span.kind_index kind)
let count t kind = Histogram.count (histogram t kind)
let total_time t kind = Time.of_ns t.totals.(Span.kind_index kind)

let summary t kind =
  let h = histogram t kind in
  {
    kind;
    count = Histogram.count h;
    mean_ns = Histogram.mean h;
    p99_ns = Histogram.p99 h;
    max_ns = Histogram.max_value h;
    total_ns = t.totals.(Span.kind_index kind);
  }

(* Non-empty kinds only, in kind order. *)
let summaries t =
  List.filter_map
    (fun k -> if count t k > 0 then Some (summary t k) else None)
    Span.all_kinds

let pp_summary ppf s =
  Fmt.pf ppf "%-15s %8d spans  mean %a  p99 %a  total %a"
    (Span.kind_name s.kind) s.count Time.pp
    (Time.of_ns (int_of_float s.mean_ns))
    Time.pp (Time.of_ns s.p99_ns) Time.pp (Time.of_ns s.total_ns)

let pp ppf t =
  List.iter (fun s -> Fmt.pf ppf "%a@." pp_summary s) (summaries t)
