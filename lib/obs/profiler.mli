(** Self-profiler: attributes *host* wall-clock and allocation to
    span-kind×tag paths while the simulator runs.

    Install it like any other sink — subscribe {!sink} on a machine's
    probe and set {!observer} on its simulator — then bracket the region
    of interest with {!start}/{!stop}. Like every sink it never touches
    virtual time, so simulation results are byte-identical with or
    without it.

    Attribution is segment-based: the host time (and minor-heap
    allocation) between two consecutive transition points — a span
    close, or a dispatch hook — is charged exclusively to the span
    closing the segment; engine bookkeeping between events lands under
    [engine;queue], post-span event tails under [engine;dispatch], and
    everything outside the event loop under [engine;other]. Segment
    boundaries share single clock reads, so the exclusive totals
    telescope to exactly the measured wall time of the profiled region.

    Tree structure is recovered from virtual-time enclosure (spans close
    in post-order: children before parents), aggregated per
    span-kind×discriminating-tag label under a per-vCPU root. *)

type t

val create : ?clock:(unit -> float) -> ?words:(unit -> float) -> unit -> t
(** [clock] is the host clock in seconds (default [Unix.gettimeofday]);
    [words] a monotonic allocated-words counter (default
    [Gc.minor_words]). Both injectable so tests can drive deterministic
    fake clocks. *)

val sink : t -> Span.t -> unit
(** The span sink; pass to {!Probe.subscribe}. Ignores spans outside a
    {!start}/{!stop} bracket. *)

val observer : t -> Svt_engine.Simulator.observer
(** Dispatch hooks; pass to [Simulator.set_observer]. Segments engine
    bookkeeping from in-event work and counts events. *)

val start : t -> unit
(** Open the profiled region: resets the segment clock and records the
    [Gc.quick_stat] baseline. *)

val stop : t -> unit
(** Close the region: charges the trailing segment, folds still-open
    pending spans into the tree, and fixes the allocation totals. No-op
    when not running. *)

(** {2 Summary} *)

val wall_s : t -> float
(** Measured wall time of the profiled region (start to last segment
    close). *)

val exclusive_total_s : t -> float
(** Sum of every node's exclusive time. Telescopes to {!wall_s} up to
    float rounding — the [--validate] invariant. *)

val spans : t -> int
val events : t -> int

val allocated_bytes : t -> float
(** Whole-region allocation (minor + major - promoted words, from
    [Gc.quick_stat] deltas at start/stop), in bytes. *)

(** {2 Output} *)

type metric = Mtime | Malloc

val folded : ?metric:metric -> t -> string
(** Folded-stacks text ("frame;frame value" per line), loadable by
    flamegraph.pl, inferno, speedscope. Values are exclusive
    nanoseconds ([Mtime], default) or exclusive allocated bytes
    ([Malloc]); zero-valued paths are omitted. *)

val write_folded : ?metric:metric -> t -> string -> unit

type row = {
  path : string;
  calls : int;
  excl_ns : float;
  incl_ns : float;
  excl_bytes : float;
}

val rows : t -> row list
(** Flat per-path rows, sorted by exclusive time descending. *)

val pp_table : ?limit:int -> Format.formatter -> t -> unit

val to_json : ?extra:(string * float) list -> t -> string
(** Summary header (wall/excl totals, span/event counts, allocation,
    plus [extra] fields) and the full aggregate tree, as one JSON
    object. *)
