(** Sink 2: Chrome trace-event JSON export.

    Collects spans (bounded by [limit]; overflow is counted, not
    silently ignored) and serializes them as complete ("ph":"X") events
    loadable in Perfetto / chrome://tracing: pid 0 is the simulated
    machine, tid [vcpu+1] one row per vCPU, "ts"/"dur" in microseconds
    of virtual time, span tags under "args". *)

type t

val create : ?limit:int -> unit -> t
(** [limit] caps retained spans (default 1_000_000). *)

val sink : t -> Span.t -> unit
(** The subscriber to install on a probe. *)

val kept : t -> int
val dropped : t -> int

val to_string : t -> string
(** The complete JSON object ({"traceEvents":[...],...}), events sorted
    by start time with process/thread-name metadata first. *)

val write_file : t -> string -> unit
