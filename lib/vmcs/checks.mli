(** VM-entry consistency checks: an entry with invalid state or controls
    must fail rather than launch the guest. L0 runs these on vmcs02 after
    transforms, so a malformed vmcs12 from a buggy or malicious L1 cannot
    reach hardware. Each failure names the offending field so the nested
    layer can reflect a VM-entry failure to L1 and the fault harness can
    {!repair} the field and continue. *)

type failure =
  | Invalid_host_state of Field.t * string
  | Invalid_guest_state of Field.t * string
  | Invalid_control of Field.t * string
  | Invalid_svt_context of Field.t * string
      (** SVt fields out of range, or SVt_visor = SVt_vm *)

val pp_failure : Format.formatter -> failure -> unit

val offending_field : failure -> Field.t

val run :
  ?arch:Svt_arch.Backend.kind ->
  ?n_hw_contexts:int ->
  Vmcs.t ->
  (unit, failure list) result
(** All failures are reported, not just the first. [n_hw_contexts]
    bounds the valid SVt context indices (default 2). [arch] (default
    {!Svt_arch.Backend.default}, i.e. x86) selects which checks apply:
    rules over fields that {!Field.valid_for} rejects on the backend
    (the VMCS link pointer and the SVt µ-registers on ARM NV/VHE) are
    skipped, as is the x86-only CR4.VMXE host check. *)

val default_value : Field.t -> int64
(** The value {!init_minimal} gives a field — the known-good state the
    repair path resets to (0 for fields it does not set). *)

val repair : Vmcs.t -> failure -> unit
(** Reset the failure's offending field to its {!default_value}. *)

val init_minimal : Vmcs.t -> unit
(** Populate the fields a well-formed hypervisor always sets, so builders
    and tests start from a passing configuration. *)
