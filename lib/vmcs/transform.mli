(** The vmcs12 ↔ vmcs02 transformations of paper §2.1/§2.2 (Algorithm 1
    step ②): L0 emulates the virtualization hardware it exposes to L1,
    so before running L2 it turns L1's descriptor into one valid on real
    hardware, and after L2 exits it reflects hardware-written state back.

    Two things make this expensive and non-shadowable: physical pointers
    in vmcs12 are L1-guest-physical and must be translated through L1's
    EPT, and execution controls must be merged with L0's own trap
    policy. *)

type result = {
  fields_copied : int;
  pointers_translated : int;
  controls_merged : int;
}

exception Invalid_pointer of Field.t * int64
(** A pointer field of vmcs12 does not map in L1's EPT — a malformed (or
    malicious) guest hypervisor configuration. *)

val l0_forced_controls : int64
(** Control bits L0 always forces on in vmcs02 regardless of vmcs12
    (§2.1: e.g. L0 keeps virtualizing the TSC deadline even if L1 would
    pass it through). *)

val entry :
  vmcs12:Vmcs.t ->
  vmcs02:Vmcs.t ->
  l1_ept:Svt_mem.Ept.t ->
  l0_ept_pointer:int64 ->
  result
(** Build/refresh vmcs02 from vmcs12 before resuming L2: copy the dirty
    fields, translating pointers through [l1_ept], installing
    [l0_ept_pointer] (the shadow EPT L0 maintains for L2) and merging
    controls. Cleans vmcs12. *)

val exit : vmcs02:Vmcs.t -> vmcs12:Vmcs.t -> result
(** Reflect hardware-written exit information and guest state from vmcs02
    into vmcs12 after an L2 exit, so L1 sees the trap as if its own
    hardware had taken it. *)

val shadow_write : vmcs12:Vmcs.t -> Field.t -> int64 -> unit
(** Propagate one L1 write to vmcs01' into its shadow (Figure 2 step ①). *)

val cost : Svt_arch.Cost_model.t -> result -> Svt_engine.Time.t
(** The calibrated cost of a transform, from the work actually done. *)

val span_tags : direction:string -> result -> (string * string) list
(** The transform's work amounts as span tags for the observability
    layer ([dir]/[fields]/[pointers]/[controls]); [direction] is
    ["entry"] or ["exit"]. *)
