(* VM-entry consistency checks, per the architecture's rule that an entry
   with invalid state or controls must fail rather than launch the guest.
   L0 runs these on vmcs02 after every transform; tests use them to show
   that a malformed vmcs12 from a (buggy or malicious) L1 cannot reach
   hardware.

   Each failure names the offending field so callers can act on it: the
   nested-virtualization layer reflects the failure to L1 as a VM-entry
   failure and the fault-injection harness repairs the field to continue
   the run ([repair]). *)

type failure =
  | Invalid_host_state of Field.t * string
  | Invalid_guest_state of Field.t * string
  | Invalid_control of Field.t * string
  | Invalid_svt_context of Field.t * string

let pp_failure ppf = function
  | Invalid_host_state (_, s) -> Fmt.pf ppf "invalid host state: %s" s
  | Invalid_guest_state (_, s) -> Fmt.pf ppf "invalid guest state: %s" s
  | Invalid_control (_, s) -> Fmt.pf ppf "invalid control: %s" s
  | Invalid_svt_context (_, s) -> Fmt.pf ppf "invalid SVt context: %s" s

let offending_field = function
  | Invalid_host_state (f, _)
  | Invalid_guest_state (f, _)
  | Invalid_control (f, _)
  | Invalid_svt_context (f, _) ->
      f

let check_bit v bit = Int64.logand v (Int64.shift_left 1L bit) <> 0L

(* CR0.PE (bit 0) and CR0.PG (bit 31) must be set for long-mode guests;
   CR4.VMXE (bit 13) must be set on hosts that run VMX. Field validity is
   queried through the backend ([Field.valid_for]): on ARM NV/VHE the
   link-pointer and SVt checks vanish because those fields do not exist in
   the memory-backed sysreg image, and the VMXE check is replaced by the
   backend's own EL2-enable gate (HCR_EL2.NV, modelled at world switch
   rather than here). *)
let run ?(arch = Svt_arch.Backend.default) ?(n_hw_contexts = 2) vmcs =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let guest_cr0 = Vmcs.peek vmcs Field.Guest_cr0 in
  if not (check_bit guest_cr0 0) then
    err (Invalid_guest_state (Field.Guest_cr0, "CR0.PE clear"));
  if not (check_bit guest_cr0 31) then
    err (Invalid_guest_state (Field.Guest_cr0, "CR0.PG clear"));
  (match arch with
  | Svt_arch.Backend.X86 ->
      let host_cr4 = Vmcs.peek vmcs Field.Host_cr4 in
      if not (check_bit host_cr4 13) then
        err (Invalid_host_state (Field.Host_cr4, "CR4.VMXE clear"))
  | Svt_arch.Backend.Arm -> ());
  if Vmcs.peek vmcs Field.Host_rip = 0L then
    err (Invalid_host_state (Field.Host_rip, "HOST_RIP is null"));
  if Field.valid_for arch Field.Vmcs_link_pointer then begin
    let link = Vmcs.peek vmcs Field.Vmcs_link_pointer in
    if link <> 0L && Int64.logand link 0xFFFL <> 0L then
      err
        (Invalid_control
           (Field.Vmcs_link_pointer, "VMCS link pointer not page-aligned"))
  end;
  (* SVt fields: target contexts must be within the core or the invalid
     sentinel (all-ones in the field encoding; we use -1). *)
  if Field.valid_for arch Field.Svt_visor then begin
    let check_svt_field name f =
      let v = Int64.to_int (Vmcs.peek vmcs f) in
      if v <> -1 && (v < 0 || v >= n_hw_contexts) then
        err
          (Invalid_svt_context
             ( f,
               Printf.sprintf "%s = %d out of range [0, %d)" name v
                 n_hw_contexts ))
    in
    check_svt_field "SVt_visor" Field.Svt_visor;
    check_svt_field "SVt_vm" Field.Svt_vm;
    check_svt_field "SVt_nested" Field.Svt_nested;
    (* SVt_visor and SVt_vm must differ when both valid: a VM cannot share
       a hardware context with its hypervisor. *)
    let visor = Int64.to_int (Vmcs.peek vmcs Field.Svt_visor) in
    let vm = Int64.to_int (Vmcs.peek vmcs Field.Svt_vm) in
    if visor <> -1 && vm <> -1 && visor = vm then
      err (Invalid_svt_context (Field.Svt_vm, "SVt_visor equals SVt_vm"))
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

(* The value [init_minimal] would give the offending field: the known-good
   state the repair path resets to. *)
let default_value = function
  | Field.Guest_cr0 | Field.Host_cr0 -> 0x80000001L (* PG | PE *)
  | Field.Guest_cr4 | Field.Host_cr4 -> 0x2000L (* VMXE *)
  | Field.Host_rip -> 0xFFFFFFFF81000000L
  | Field.Svt_visor | Field.Svt_vm | Field.Svt_nested -> -1L
  | _ -> 0L

let repair vmcs failure =
  let f = offending_field failure in
  Vmcs.write vmcs f (default_value f)

(* Populate the fields a well-formed hypervisor always sets, so tests and
   builders start from a passing configuration. *)
let init_minimal vmcs =
  Vmcs.write vmcs Field.Guest_cr0 0x80000001L (* PG | PE *);
  Vmcs.write vmcs Field.Guest_cr4 0x2000L;
  Vmcs.write vmcs Field.Host_cr0 0x80000001L;
  Vmcs.write vmcs Field.Host_cr4 0x2000L (* VMXE *);
  Vmcs.write vmcs Field.Host_rip 0xFFFFFFFF81000000L;
  Vmcs.write vmcs Field.Guest_rip 0x400000L;
  Vmcs.write vmcs Field.Svt_visor (-1L);
  Vmcs.write vmcs Field.Svt_vm (-1L);
  Vmcs.write vmcs Field.Svt_nested (-1L)
