(* The vmcs12 ↔ vmcs02 transformations of paper §2.1/§2.2 (Algorithm 1
   steps ②): L0 emulates the virtualization hardware it exposes to L1, so
   before running L2 it must turn L1's descriptor (shadowed as vmcs12)
   into a descriptor valid on real hardware (vmcs02), and after L2 exits
   it must reflect hardware-written state back.

   Two things make this expensive and non-shadowable in hardware:
   - physical pointers in vmcs12 are L1-guest-physical and must be
     translated through L1's EPT to host-physical addresses;
   - execution controls must be *merged*: L0 forces its own trap policy on
     top of whatever L1 asked for (e.g. L0 keeps virtualizing the TSC
     deadline even if L1 would let L2 touch it — §2.1). *)

module Ept = Svt_mem.Ept
module Addr = Svt_mem.Addr

type result = {
  fields_copied : int;
  pointers_translated : int;
  controls_merged : int;
}

exception Invalid_pointer of Field.t * int64

(* Translate a guest-physical pointer field through [l1_ept]. *)
let translate_pointer ~l1_ept field v =
  if v = 0L then 0L
  else begin
    let gpa = Addr.Gpa.of_int (Int64.to_int v) in
    match Ept.translate l1_ept ~gpa ~access:Ept.Read with
    | Ok hpa -> Int64.of_int (Addr.Hpa.to_int hpa)
    | Error _ -> raise (Invalid_pointer (field, v))
  end

(* Controls L0 always forces on in vmcs02 regardless of vmcs12 (bit
   positions are internal to this model). *)
let l0_forced_controls = 0x5L (* intercept TSC-deadline MSR + ext-int exits *)

(* Build/refresh vmcs02 from vmcs12 before resuming L2 (the "entry"
   transform, Algorithm 1 line 14). Only dirty vmcs12 fields are copied.
   [l0_ept_pointer] replaces L1's EPT pointer with the shadow EPT L0
   maintains for L2. *)
let entry ~vmcs12 ~vmcs02 ~l1_ept ~l0_ept_pointer =
  let copied = ref 0 and translated = ref 0 and merged = ref 0 in
  List.iter
    (fun f ->
      let v = Vmcs.peek vmcs12 f in
      let v' =
        if Field.equal f Field.Ept_pointer then begin
          incr translated;
          l0_ept_pointer
        end
        else if Field.is_physical_pointer f then begin
          incr translated;
          translate_pointer ~l1_ept f v
        end
        else if Field.is_control f then begin
          incr merged;
          Int64.logor v l0_forced_controls
        end
        else v
      in
      Vmcs.write vmcs02 f v';
      incr copied)
    (Vmcs.dirty_fields vmcs12);
  Vmcs.clean vmcs12;
  { fields_copied = !copied; pointers_translated = !translated;
    controls_merged = !merged }

(* Reflect hardware-written exit state from vmcs02 back into vmcs12 after
   an L2 exit (the "exit" transform, Algorithm 1 line 3), so L1 sees the
   trap as if its own hardware had taken it. *)
let exit ~vmcs02 ~vmcs12 =
  let copied = ref 0 in
  List.iter
    (fun f ->
      if Field.is_exit_info f || Field.is_guest_state f then begin
        Vmcs.write vmcs12 f (Vmcs.peek vmcs02 f);
        incr copied
      end)
    Field.all;
  Vmcs.clean vmcs02;
  { fields_copied = !copied; pointers_translated = 0; controls_merged = 0 }

(* Shadowing step ① of Figure 2: propagate one L1 write to vmcs01' into
   vmcs12. In the baseline this happens inside a trap handler; under
   hardware shadowing some fields skip the trap but the copy still
   happens. *)
let shadow_write ~vmcs12 field v = Vmcs.write vmcs12 field v

(* Cost of a transform in the calibrated model, from the amount of work
   actually performed. *)
let cost (cm : Svt_arch.Cost_model.t) result =
  Svt_arch.Cost_model.transform_cost cm ~fields:result.fields_copied

(* Observability payload: how much work this transform did, as span tags
   for the obs layer (emitted by the nested path, which also knows the
   charged cost). *)
let span_tags ~direction result =
  [
    ("dir", direction);
    ("fields", string_of_int result.fields_copied);
    ("pointers", string_of_int result.pointers_translated);
    ("controls", string_of_int result.controls_merged);
  ]
