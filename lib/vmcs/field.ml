(* VMCS fields. The set below covers what the nested-virtualization paths
   in this repository read and write: guest/host state for context
   switches, exit information, execution controls, the physical pointers
   that need GPA→HPA translation during vmcs12→vmcs02 transforms, and the
   three SVt fields the paper adds (Table 2). *)

type t =
  (* 16/32-bit control & info *)
  | Vpid
  | Exit_reason
  | Exit_qualification
  | Exit_interrupt_info
  | Entry_interrupt_info
  | Instruction_length
  | Pin_based_controls
  | Cpu_based_controls
  | Secondary_controls
  | Exception_bitmap
  | Entry_controls
  | Exit_controls
  | Preemption_timer_value
  (* physical pointers: values are guest-physical in a vmcs written by a
     guest hypervisor and must be translated during shadow transforms *)
  | Ept_pointer
  | Io_bitmap_a
  | Io_bitmap_b
  | Msr_bitmap
  | Apic_access_addr
  | Virtual_apic_page
  | Posted_interrupt_desc
  | Vmcs_link_pointer
  (* guest state *)
  | Guest_rip
  | Guest_rsp
  | Guest_rflags
  | Guest_cr0
  | Guest_cr3
  | Guest_cr4
  | Guest_efer
  | Guest_gdtr_base
  | Guest_idtr_base
  | Guest_cs_base
  | Guest_ss_base
  | Guest_interruptibility
  | Guest_activity_state
  (* host state *)
  | Host_rip
  | Host_rsp
  | Host_cr0
  | Host_cr3
  | Host_cr4
  | Host_efer
  (* SVt extension fields (paper Table 2) *)
  | Svt_visor
  | Svt_vm
  | Svt_nested

let all =
  [ Vpid; Exit_reason; Exit_qualification; Exit_interrupt_info;
    Entry_interrupt_info; Instruction_length; Pin_based_controls;
    Cpu_based_controls; Secondary_controls; Exception_bitmap; Entry_controls;
    Exit_controls; Preemption_timer_value; Ept_pointer; Io_bitmap_a;
    Io_bitmap_b; Msr_bitmap; Apic_access_addr; Virtual_apic_page;
    Posted_interrupt_desc; Vmcs_link_pointer; Guest_rip; Guest_rsp;
    Guest_rflags; Guest_cr0; Guest_cr3; Guest_cr4; Guest_efer;
    Guest_gdtr_base; Guest_idtr_base; Guest_cs_base; Guest_ss_base;
    Guest_interruptibility; Guest_activity_state; Host_rip; Host_rsp;
    Host_cr0; Host_cr3; Host_cr4; Host_efer; Svt_visor; Svt_vm; Svt_nested ]

(* Encodings in the style of the Intel layout: index within a class plus
   width/class bits. The SVt fields slot into spare control-class indices,
   matching the paper's claim that "the current VMCS layout allows fitting
   our three fields" (§5.1). *)
let encode f =
  let idx =
    let rec find i = function
      | [] -> assert false
      | g :: _ when g = f -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 all
  in
  0x2000 lor idx

(* Fields holding physical addresses that a guest hypervisor fills with
   *its* guest-physical values; L0 must translate them to host-physical
   when building vmcs02 (paper §2.1). *)
let is_physical_pointer = function
  | Ept_pointer | Io_bitmap_a | Io_bitmap_b | Msr_bitmap | Apic_access_addr
  | Virtual_apic_page | Posted_interrupt_desc | Vmcs_link_pointer ->
      true
  | _ -> false

(* Guest-state fields the hardware saves/loads on trap/resume. *)
let is_guest_state = function
  | Guest_rip | Guest_rsp | Guest_rflags | Guest_cr0 | Guest_cr3 | Guest_cr4
  | Guest_efer | Guest_gdtr_base | Guest_idtr_base | Guest_cs_base
  | Guest_ss_base | Guest_interruptibility | Guest_activity_state ->
      true
  | _ -> false

let is_exit_info = function
  | Exit_reason | Exit_qualification | Exit_interrupt_info
  | Instruction_length ->
      true
  | _ -> false

let is_control = function
  | Vpid | Pin_based_controls | Cpu_based_controls | Secondary_controls
  | Exception_bitmap | Entry_controls | Exit_controls
  | Preemption_timer_value | Entry_interrupt_info ->
      true
  | _ -> false

let is_svt = function Svt_visor | Svt_vm | Svt_nested -> true | _ -> false

(* Fields the Out-of-Hypervisor mode delegates to L1: the guest-state and
   exit-information words its delegated handlers read and write directly.
   Physical pointers (which need L0's GPA→HPA translation), the execution
   controls and the SVt µ-register fields stay under L0's validation — a
   corrupted delegated field therefore surfaces to L1 as a delegation
   fault, while a corrupted L0-owned field still takes the reflected
   VM-entry-failure path. *)
let is_ooh_delegated f = is_guest_state f || is_exit_info f

(* Field validity, queried through the architecture backend. On x86/VMX
   every field is a word of the cached VMCS. On ARM NV/VHE the nested
   state is a memory-backed system-register image: most fields have a
   direct sysreg analog (GUEST_RIP ↔ ELR_EL2, the controls ↔ HCR_EL2 and
   friends), but the fields that encode the VMCS-caching machinery itself
   do not exist — there is no link pointer to a second cached VMCS, no
   port-I/O bitmaps (all ARM device access is MMIO through stage 2), and
   no SVt µ-registers because HW SVt's per-level hardware contexts extend
   exactly the caching machinery the ISA lacks. *)
let valid_for (arch : Svt_arch.Backend.kind) f =
  match arch with
  | Svt_arch.Backend.X86 -> true
  | Svt_arch.Backend.Arm -> (
      match f with
      | Vmcs_link_pointer | Io_bitmap_a | Io_bitmap_b | Svt_visor | Svt_vm
      | Svt_nested ->
          false
      | _ -> true)

let name f =
  match f with
  | Vpid -> "VPID"
  | Exit_reason -> "EXIT_REASON"
  | Exit_qualification -> "EXIT_QUALIFICATION"
  | Exit_interrupt_info -> "EXIT_INTERRUPT_INFO"
  | Entry_interrupt_info -> "ENTRY_INTERRUPT_INFO"
  | Instruction_length -> "INSTRUCTION_LENGTH"
  | Pin_based_controls -> "PIN_BASED_CONTROLS"
  | Cpu_based_controls -> "CPU_BASED_CONTROLS"
  | Secondary_controls -> "SECONDARY_CONTROLS"
  | Exception_bitmap -> "EXCEPTION_BITMAP"
  | Entry_controls -> "ENTRY_CONTROLS"
  | Exit_controls -> "EXIT_CONTROLS"
  | Preemption_timer_value -> "PREEMPTION_TIMER_VALUE"
  | Ept_pointer -> "EPT_POINTER"
  | Io_bitmap_a -> "IO_BITMAP_A"
  | Io_bitmap_b -> "IO_BITMAP_B"
  | Msr_bitmap -> "MSR_BITMAP"
  | Apic_access_addr -> "APIC_ACCESS_ADDR"
  | Virtual_apic_page -> "VIRTUAL_APIC_PAGE"
  | Posted_interrupt_desc -> "POSTED_INTERRUPT_DESC"
  | Vmcs_link_pointer -> "VMCS_LINK_POINTER"
  | Guest_rip -> "GUEST_RIP"
  | Guest_rsp -> "GUEST_RSP"
  | Guest_rflags -> "GUEST_RFLAGS"
  | Guest_cr0 -> "GUEST_CR0"
  | Guest_cr3 -> "GUEST_CR3"
  | Guest_cr4 -> "GUEST_CR4"
  | Guest_efer -> "GUEST_EFER"
  | Guest_gdtr_base -> "GUEST_GDTR_BASE"
  | Guest_idtr_base -> "GUEST_IDTR_BASE"
  | Guest_cs_base -> "GUEST_CS_BASE"
  | Guest_ss_base -> "GUEST_SS_BASE"
  | Guest_interruptibility -> "GUEST_INTERRUPTIBILITY"
  | Guest_activity_state -> "GUEST_ACTIVITY_STATE"
  | Host_rip -> "HOST_RIP"
  | Host_rsp -> "HOST_RSP"
  | Host_cr0 -> "HOST_CR0"
  | Host_cr3 -> "HOST_CR3"
  | Host_cr4 -> "HOST_CR4"
  | Host_efer -> "HOST_EFER"
  | Svt_visor -> "SVT_VISOR"
  | Svt_vm -> "SVT_VM"
  | Svt_nested -> "SVT_NESTED"

let compare = Stdlib.compare
let equal = ( = )
let pp ppf f = Fmt.string ppf (name f)
