(* Micro-benchmarks (paper §2.3 and §6.1): a loop containing the operation
   under scrutiny surrounded by a chain of dependent register increments
   simulating a variable workload, repeated until the paper's convergence
   criterion holds (stddev and overhead below 1% of mean at 2σ, outliers
   removed at 4σ). *)

module Time = Svt_engine.Time
module Proc = Svt_engine.Simulator.Proc
module Convergence = Svt_stats.Convergence
module System = Svt_core.System
module Guest = Svt_core.Guest
module Vcpu = Svt_hyp.Vcpu
module Breakdown = Svt_hyp.Breakdown

type result = {
  per_op_us : float;
  stats : Convergence.result;
  exits : int;
  breakdown : (string * Time.t * float) list; (* per-episode bucket rows *)
}

(* Measure one guest operation under the convergence policy. [workload] is
   the number of dependent increments around the operation. *)
let measure ?(policy = Convergence.paper_policy) ?(workload = 0)
    ?(warmup = 32) sys ~op () =
  let vcpu = System.vcpu0 sys in
  let bd = Vcpu.breakdown vcpu in
  let outcome = ref None in
  Vcpu.spawn_program vcpu (fun v ->
      (* Warm up: populate shadow structures, software caches. *)
      for _ = 1 to warmup do
        Guest.dependent_increments v workload;
        op v
      done;
      Breakdown.reset bd;
      let samples = ref [] in
      let count = ref 0 in
      let batch = max policy.Convergence.min_samples 8 in
      let finished = ref false in
      while not !finished do
        for _ = 1 to batch do
          let t0 = Proc.now () in
          Guest.dependent_increments v workload;
          op v;
          samples := Time.to_us_f (Time.diff (Proc.now ()) t0) :: !samples;
          incr count
        done;
        let r = Convergence.summarize policy !samples in
        if r.Convergence.converged || !count >= policy.Convergence.max_samples
        then begin
          finished := true;
          outcome := Some r
        end
      done);
  System.run sys;
  let stats = Option.get !outcome in
  let episodes = max 1 (Breakdown.exits bd) in
  (* Per-operation episode count: interrupt-free micro-benchmarks take a
     fixed number of exits per op, so normalizing by samples is exact. *)
  let per_ep ns = Time.of_ns (Time.to_ns ns / stats.Convergence.samples_used) in
  let breakdown =
    List.map
      (fun (name, total, pct) -> (name, per_ep total, pct))
      (Breakdown.rows bd)
  in
  { per_op_us = stats.Convergence.mean; stats; exits = episodes; breakdown }

(* The canonical instance: a cpuid in the guest under test. *)
let cpuid_op v = ignore (Guest.cpuid v ~leaf:1)

let measure_cpuid ?policy ?workload sys =
  measure ?policy ?workload sys ~op:cpuid_op ()

(* Figure 6: cpuid latency at every level and mode. *)
type fig6_row = { label : string; time_us : float; overhead_vs_l0 : float }

let fig6 ?(modes = [ Svt_core.Mode.sw_svt_default; Svt_core.Mode.Hw_svt ]) () =
  let run ~mode ~level label =
    let sys = System.create ~mode ~level () in
    let r = measure_cpuid sys in
    (label, r)
  in
  let l0 = run ~mode:Svt_core.Mode.Baseline ~level:System.L0_native "L0" in
  let l1 = run ~mode:Svt_core.Mode.Baseline ~level:System.L1_leaf "L1" in
  let l2 = run ~mode:Svt_core.Mode.Baseline ~level:System.L2_nested "L2" in
  let svt_rows =
    List.map
      (fun mode ->
        run ~mode ~level:System.L2_nested
          (match mode with
          | Svt_core.Mode.Sw_svt _ -> "SW SVt"
          | Svt_core.Mode.Hw_svt -> "HW SVt"
          | Svt_core.Mode.Hw_full_nesting -> "HW full nesting"
          | Svt_core.Mode.Ooh -> "OoH"
          | Svt_core.Mode.Baseline -> "baseline"))
      modes
  in
  let l0_us = (snd l0).per_op_us in
  List.map
    (fun (label, r) ->
      { label; time_us = r.per_op_us; overhead_vs_l0 = r.per_op_us /. l0_us })
    ([ l0; l1; l2 ] @ svt_rows)
