(* Micro-benchmarks (paper §2.3 and §6.1): a loop containing the operation
   under scrutiny surrounded by a chain of dependent register increments
   simulating a variable workload, repeated until the paper's convergence
   criterion holds (stddev and overhead below 1% of mean at 2σ, outliers
   removed at 4σ). *)

module Time = Svt_engine.Time
module Proc = Svt_engine.Simulator.Proc
module Convergence = Svt_stats.Convergence
module System = Svt_core.System
module Guest = Svt_core.Guest
module Vcpu = Svt_hyp.Vcpu
module Breakdown = Svt_hyp.Breakdown

type result = {
  per_op_us : float;
  stats : Convergence.result;
  exits : int;
  breakdown : (string * Time.t * float) list; (* per-episode bucket rows *)
}

(* Measure one guest operation under the convergence policy. [workload] is
   the number of dependent increments around the operation. *)
let measure ?(policy = Convergence.paper_policy) ?(workload = 0)
    ?(warmup = 32) sys ~op () =
  let vcpu = System.vcpu0 sys in
  let bd = Vcpu.breakdown vcpu in
  let outcome = ref None in
  Vcpu.spawn_program vcpu (fun v ->
      (* Warm up: populate shadow structures, software caches. *)
      for _ = 1 to warmup do
        Guest.dependent_increments v workload;
        op v
      done;
      Breakdown.reset bd;
      let samples = ref [] in
      let count = ref 0 in
      let batch = max policy.Convergence.min_samples 8 in
      let finished = ref false in
      while not !finished do
        for _ = 1 to batch do
          let t0 = Proc.now () in
          Guest.dependent_increments v workload;
          op v;
          samples := Time.to_us_f (Time.diff (Proc.now ()) t0) :: !samples;
          incr count
        done;
        let r = Convergence.summarize policy !samples in
        if r.Convergence.converged || !count >= policy.Convergence.max_samples
        then begin
          finished := true;
          outcome := Some r
        end
      done);
  System.run sys;
  let stats = Option.get !outcome in
  let episodes = max 1 (Breakdown.exits bd) in
  (* Per-operation episode count: interrupt-free micro-benchmarks take a
     fixed number of exits per op, so normalizing by samples is exact. *)
  let per_ep ns = Time.of_ns (Time.to_ns ns / stats.Convergence.samples_used) in
  let breakdown =
    List.map
      (fun (name, total, pct) -> (name, per_ep total, pct))
      (Breakdown.rows bd)
  in
  { per_op_us = stats.Convergence.mean; stats; exits = episodes; breakdown }

(* The canonical instance: a cpuid in the guest under test. *)
let cpuid_op v = ignore (Guest.cpuid v ~leaf:1)

let measure_cpuid ?policy ?workload sys =
  measure ?policy ?workload sys ~op:cpuid_op ()

(* Figure 6: cpuid latency at every level and mode. *)
type fig6_row = { label : string; time_us : float; overhead_vs_l0 : float }

let fig6 ?arch ?(modes = [ Svt_core.Mode.sw_svt_default; Svt_core.Mode.Hw_svt ])
    () =
  (* HW SVt's design point does not exist on a backend without a shadow
     VMCS (ARM NV/VHE): drop it from the default bar set rather than
     asking the caller to know the capability table. *)
  let kind =
    match arch with Some k -> k | None -> Svt_arch.Backend.default
  in
  let modes =
    List.filter
      (function
        | Svt_core.Mode.Hw_svt -> Svt_arch.Backend.has_hw_svt kind
        | _ -> true)
      modes
  in
  let run ~mode ~level label =
    let sys = System.create ?arch ~mode ~level () in
    let r = measure_cpuid sys in
    (label, r)
  in
  let l0 = run ~mode:Svt_core.Mode.Baseline ~level:System.L0_native "L0" in
  let l1 = run ~mode:Svt_core.Mode.Baseline ~level:System.L1_leaf "L1" in
  let l2 = run ~mode:Svt_core.Mode.Baseline ~level:System.L2_nested "L2" in
  let svt_rows =
    List.map
      (fun mode ->
        run ~mode ~level:System.L2_nested
          (match mode with
          | Svt_core.Mode.Sw_svt _ -> "SW SVt"
          | Svt_core.Mode.Hw_svt -> "HW SVt"
          | Svt_core.Mode.Hw_full_nesting -> "HW full nesting"
          | Svt_core.Mode.Ooh -> "OoH"
          | Svt_core.Mode.Baseline -> "baseline"))
      modes
  in
  let l0_us = (snd l0).per_op_us in
  List.map
    (fun (label, r) ->
      { label; time_us = r.per_op_us; overhead_vs_l0 = r.per_op_us /. l0_us })
    ([ l0; l1; l2 ] @ svt_rows)

(* --- per-exit latency table (the §6.3-style profile, per backend) ------- *)

(* Guest operations that deterministically drive one exit reason per
   iteration and are repeatable inside the measurement loop (page faults
   and MMIO touch per-address state, so they stay out). *)
let wrmsr_op v = Guest.wrmsr v Svt_arch.Msr.Ia32_star 0x1234L
let io_write_op v = Guest.io_write v ~port:0x80 0
let vmcall_op v = ignore (Guest.vmcall v ~nr:0 ~arg:0L)

let exit_ops =
  [
    (Svt_arch.Exit_reason.Cpuid, cpuid_op);
    (Svt_arch.Exit_reason.Msr_write, wrmsr_op);
    (Svt_arch.Exit_reason.Io_instruction, io_write_op);
    (Svt_arch.Exit_reason.Vmcall, vmcall_op);
  ]

type exit_row = {
  reason : Svt_arch.Exit_reason.t;
  exit_label : string; (* the backend's own spelling of the exit *)
  baseline_us : float;
  svt_us : float;
  speedup : float;
}

(* For each driveable exit reason: its nested (L2) latency under the
   baseline and under this backend's SVt flavour, labelled with the
   backend's own exit spelling. This is the table the ARM claim rests
   on — baseline nested exits are uniformly costlier there, and the
   SVt-relative speedup uniformly larger. *)
let per_exit_table ?arch ?(svt = Svt_core.Mode.sw_svt_default) () =
  let kind =
    match arch with Some k -> k | None -> Svt_arch.Backend.default
  in
  let one ~mode op =
    let sys = System.create ?arch ~mode ~level:System.L2_nested () in
    (measure sys ~op ()).per_op_us
  in
  List.map
    (fun (reason, op) ->
      let baseline_us = one ~mode:Svt_core.Mode.Baseline op in
      let svt_us = one ~mode:svt op in
      {
        reason;
        exit_label = Svt_arch.Backend.exit_name kind reason;
        baseline_us;
        svt_us;
        speedup = baseline_us /. svt_us;
      })
    exit_ops
