(** Synthetic per-tenant load shapes for the consolidation host
    ({!Svt_sched.Host}): an endless CPU-bound compute/trap loop, or an
    open-loop request server with exponential arrivals. Programs never
    terminate — the host scheduler advances them in bounded slices. *)

type shape =
  | Cpu_bound of { burst : Svt_engine.Time.t }
      (** always runnable: [burst] of guest compute, then one cpuid (a
          full nested trap episode) per op *)
  | Open_arrivals of {
      mean_gap : Svt_engine.Time.t;
      burst : Svt_engine.Time.t;
    }
      (** exponential inter-arrival gaps; idles (timer + hlt) between
          requests and records per-request latency *)

val default_burst : Svt_engine.Time.t
(** 200 µs of guest work per op. *)

val cpu_bound : shape
(** [Cpu_bound] at {!default_burst}. *)

val open_arrivals :
  ?mean_gap:Svt_engine.Time.t -> ?burst:Svt_engine.Time.t -> unit -> shape
(** Defaults: 400 µs mean gap, {!default_burst} service time. *)

val shape_name : shape -> string

(** Shared per-tenant progress counters; every vCPU of a tenant mutates
    the same record (single-threaded within one simulator). *)
type counters = {
  mutable ops : int;
  latency : Svt_stats.Histogram.t;
      (** arrival→completion in ns; only [Open_arrivals] adds samples *)
}

val counters : unit -> counters

val spawn : shape:shape -> seed:int -> counters -> Svt_hyp.Vcpu.t -> unit
(** Install the endless tenant program on [vcpu]; [seed] must differ
    per vCPU for independent arrival streams. *)
