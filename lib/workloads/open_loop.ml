(* Synthetic per-tenant load shapes for the consolidation host
   (lib/sched). A consolidated guest is either CPU-bound — an endless
   compute-then-trap loop that keeps its vCPU runnable in every quantum,
   the shape that exposes SMT co-residency and SVt-thread placement
   trade-offs — or an open-loop request server with exponential
   inter-arrival gaps, which sleeps between requests and measures the
   scheduling (queueing + service) latency each request observes.

   Both shapes deliberately run forever: a host scheduler advances them
   in bounded slices, so "duration" is the host's horizon, not the
   program's. Every op ends in one cpuid — a full nested trap episode —
   so per-exit cost differences between run modes surface directly in
   tenant throughput. *)

module Time = Svt_engine.Time
module Proc = Svt_engine.Simulator.Proc
module Prng = Svt_engine.Prng
module Histogram = Svt_stats.Histogram
module Guest = Svt_core.Guest
module Vcpu = Svt_hyp.Vcpu

type shape =
  | Cpu_bound of { burst : Time.t }
  | Open_arrivals of { mean_gap : Time.t; burst : Time.t }

(* ~200 µs of guest work per trap: large enough that the guest's own
   code dominates (consolidation is about aggregate CPU capacity — the
   slot count a policy leaves — not trap micro-latency), small enough
   that per-exit cost still moves aggregate throughput by whole percents
   between modes. *)
let default_burst = Time.of_us 200
let cpu_bound = Cpu_bound { burst = default_burst }

let open_arrivals ?(mean_gap = Time.of_us 400) ?(burst = default_burst) () =
  Open_arrivals { mean_gap; burst }

let shape_name = function
  | Cpu_bound _ -> "cpu-bound"
  | Open_arrivals _ -> "open-arrivals"

type counters = {
  mutable ops : int;
  latency : Histogram.t;
      (* arrival->completion ns; only the open shape records samples *)
}

let counters () = { ops = 0; latency = Histogram.create () }

let spawn ~shape ~seed c vcpu =
  Vcpu.spawn_program vcpu (fun v ->
      match shape with
      | Cpu_bound { burst } ->
          while true do
            Guest.compute v burst;
            ignore (Guest.cpuid v ~leaf:1);
            c.ops <- c.ops + 1
          done
      | Open_arrivals { mean_gap; burst } ->
          let rng = Prng.create seed in
          let next = ref Time.zero in
          while true do
            let gap =
              Prng.exponential rng ~mean:(float_of_int (Time.to_ns mean_gap))
            in
            next := Time.add !next (Time.of_ns (max 1 (int_of_float gap)));
            (* sleep to the arrival instant; wake-ups can be spurious
               (host events), so re-arm until the deadline passes *)
            while Time.(Proc.now () < !next) do
              Guest.arm_timer v ~after:(Time.diff !next (Proc.now ()));
              Guest.hlt v
            done;
            Guest.compute v burst;
            ignore (Guest.cpuid v ~leaf:1);
            c.ops <- c.ops + 1;
            Histogram.add c.latency (Time.to_ns (Time.diff (Proc.now ()) !next))
          done)
