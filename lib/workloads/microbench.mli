(** Micro-benchmarks (paper §2.3 and §6.1): a loop containing the
    operation under scrutiny surrounded by a chain of dependent register
    increments, repeated until the paper's convergence criterion holds
    (stddev ≤ 1 % of mean at 2σ, 4σ outlier rejection). *)

type result = {
  per_op_us : float;
  stats : Svt_stats.Convergence.result;
  exits : int;
  breakdown : (string * Svt_engine.Time.t * float) list;
      (** per-episode Table-1 rows *)
}

val measure :
  ?policy:Svt_stats.Convergence.policy ->
  ?workload:int ->
  ?warmup:int ->
  Svt_core.System.t ->
  op:(Svt_hyp.Vcpu.t -> unit) ->
  unit ->
  result
(** Measure one guest operation on the system's vCPU 0. [workload] is
    the number of dependent increments around the operation. *)

val cpuid_op : Svt_hyp.Vcpu.t -> unit

val measure_cpuid :
  ?policy:Svt_stats.Convergence.policy ->
  ?workload:int ->
  Svt_core.System.t ->
  result
(** The canonical instance: a cpuid in the guest under test. *)

(** One bar of Figure 6. *)
type fig6_row = { label : string; time_us : float; overhead_vs_l0 : float }

val fig6 :
  ?arch:Svt_arch.Backend.kind ->
  ?modes:Svt_core.Mode.t list ->
  unit ->
  fig6_row list
(** Measure cpuid at L0/L1/L2 plus the given SVt modes (default SW and
    HW SVt). [arch] selects the backend; a mode the backend cannot run
    (HW SVt on ARM NV/VHE) is dropped from the bar set. *)

(** {2 Per-exit latency table} *)

(** One row of the per-backend exit profile: the nested latency of one
    driveable exit reason under baseline and SVt. *)
type exit_row = {
  reason : Svt_arch.Exit_reason.t;
  exit_label : string;  (** the backend's own spelling of the exit *)
  baseline_us : float;
  svt_us : float;
  speedup : float;
}

val exit_ops : (Svt_arch.Exit_reason.t * (Svt_hyp.Vcpu.t -> unit)) list
(** The exit reasons the table can drive deterministically from a guest
    loop (cpuid, wrmsr, port-I/O write, vmcall), with the operation that
    produces each. *)

val per_exit_table :
  ?arch:Svt_arch.Backend.kind ->
  ?svt:Svt_core.Mode.t ->
  unit ->
  exit_row list
(** Nested (L2) per-exit latency under baseline vs [svt] (default SW
    SVt) for every entry of {!exit_ops}, labelled with the backend's own
    exit spellings ({!Svt_arch.Backend.exit_name}). *)
