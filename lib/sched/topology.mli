(** Host hardware-thread topology for the consolidation scheduler:
    sockets × cores × SMT threads over {!Svt_arch.Smt_core} cores in
    [Smt_mode]. Thread ids are core-major:
    [tid = core * smt_per_core + ctx]. *)

type t

val create :
  ?sockets:int -> ?cores_per_socket:int -> ?smt_per_core:int -> unit -> t
(** Defaults are the paper testbed: 2 × 8 × 2 (32 hardware threads).
    Raises [Invalid_argument] on a dimension < 1. *)

val of_machine_config : Svt_hyp.Machine.config -> t
(** The same shape as a simulated machine's config. *)

val sockets : t -> int
val cores_per_socket : t -> int
val smt_per_core : t -> int
val n_cores : t -> int
val n_threads : t -> int
val core : t -> int -> Svt_arch.Smt_core.t
val thread : t -> core:int -> ctx:int -> int
val core_of_thread : t -> int -> int
val ctx_of_thread : t -> int -> int
val numa_node : t -> int -> int

val placement : t -> core_a:int -> core_b:int -> Svt_core.Mode.placement
(** Relative distance of two cores in {!Svt_core.Mode.placement} terms
    (same core → [Smt_sibling], same socket → [Same_numa_core], else
    [Cross_numa]) — the scale {!Svt_core.Wait} prices wake-ups on. *)

val pp : Format.formatter -> t -> unit
