(* SVt-thread provisioning policies, turned into concrete gang claims.

   The policy type itself lives in Mode (System.Config.validate needs it
   below this layer); here it is priced: how many hardware threads a
   tenant's vCPU gang pins, whether whole cores are claimed, how many
   host-global service threads a shared pool reserves, and what a
   donated sibling charges per trap episode. *)

module Time = Svt_engine.Time
module Mode = Svt_core.Mode
module Wait = Svt_core.Wait

type t = Mode.svt_policy =
  | Dedicated_sibling
  | Shared_pool of { threads : int }
  | On_demand_donation

let default = Mode.default_svt_policy
let name = Mode.svt_policy_name
let of_string = Mode.svt_policy_of_string

type claim = {
  threads_per_vcpu : int;
  whole_core : bool;
  pool_threads : int;
  donation : bool;
}

let claim ~(mode : Mode.t) (p : t) =
  match mode with
  | Mode.Baseline | Mode.Hw_full_nesting | Mode.Ooh ->
      (* no SVt-thread at all (OoH delegates to L1 in-place): one
         hardware thread per vCPU, siblings free for co-runners *)
      { threads_per_vcpu = 1; whole_core = false; pool_threads = 0;
        donation = false }
  | Mode.Hw_svt ->
      (* SVt hardware fetches from exactly one context of the core at a
         time (§4): the vCPU's stack owns the whole core, no co-runner
         can use the siblings *)
      { threads_per_vcpu = 1; whole_core = true; pool_threads = 0;
        donation = false }
  | Mode.Sw_svt _ -> (
      match p with
      | Dedicated_sibling ->
          (* the paper's setup: the sibling is reserved for the
             SVt-thread and never runs other work *)
          { threads_per_vcpu = 1; whole_core = true; pool_threads = 0;
            donation = false }
      | Shared_pool { threads } ->
          { threads_per_vcpu = 1; whole_core = false;
            pool_threads = threads; donation = false }
      | On_demand_donation ->
          { threads_per_vcpu = 1; whole_core = false; pool_threads = 0;
            donation = true })

(* Threads a tenant's gang occupies while granted (host-global pool
   threads are accounted separately, once). *)
let gang_threads ~smt_per_core ~n_vcpus c =
  n_vcpus * (if c.whole_core then smt_per_core else 1)

(* What an on-demand-donated sibling costs per trap episode: the
   SVt-thread is not parked in mwait on the command line (the sibling is
   running someone else's vCPU), so every episode pays a full wait setup
   plus the wake response for the mode's placement. *)
let donation_wake_cost cm (mode : Mode.t) =
  match mode with
  | Mode.Sw_svt { wait; placement } ->
      Time.add (Wait.enter_cost cm wait)
        (Wait.response_latency cm ~wait ~placement)
  | Mode.Baseline | Mode.Hw_svt | Mode.Hw_full_nesting | Mode.Ooh -> Time.zero
