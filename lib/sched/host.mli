(** The multi-tenant consolidation host: gang-schedules many complete
    nested-virtualization stacks ({!Svt_core.System}, one simulator and
    local clock each) over one {!Topology} of SMT cores, advancing a
    host virtual clock in fixed quanta.

    Each tenant carries a monotone local-time entitlement ([target]):
    sleeping tenants accrue it free, granted tenants simulate up to it
    via {!Svt_core.System.run_slice} (scaled down by SMT co-residency),
    and tenants that lose the gang grab accumulate steal time. SVt-
    thread provisioning costs the single-stack model does not see —
    donation wake latency per trap episode, shared-pool queueing beyond
    K threads × quantum — are charged as debt against future grants, so
    per-exit latencies remain exactly the single-stack (paper) figures
    while aggregate throughput bears the provisioning trade-off.

    Everything is deterministic: rotating-order greedy placement,
    integer-nanosecond charges, no wall clock. Same topology + specs +
    horizon ⇒ byte-identical reports. *)

type tenant_spec = {
  name : string;
  arch : Svt_arch.Backend.kind;
      (** architecture backend of this tenant's stack: selects the cost
          table its gang pricing is computed from (default [X86]) *)
  mode : Svt_core.Mode.t;
  policy : Policy.t;
  n_vcpus : int;
  shape : Svt_workloads.Open_loop.shape;
  seed : int;
}

val tenant_spec :
  ?name:string ->
  ?arch:Svt_arch.Backend.kind ->
  ?policy:Policy.t ->
  ?n_vcpus:int ->
  ?shape:Svt_workloads.Open_loop.shape ->
  ?seed:int ->
  Svt_core.Mode.t ->
  tenant_spec
(** Defaults: auto name ("t<index>" at admission), x86, [Policy.default],
    1 vCPU, {!Svt_workloads.Open_loop.cpu_bound}, seed 0. *)

type t

val create : ?quantum:Svt_engine.Time.t -> topology:Topology.t -> unit -> t
(** Default quantum: 50 µs. *)

val add_tenant : t -> tenant_spec -> (unit, Svt_core.System.Config.error list) result
(** Build and admit one tenant stack. Host-level feasibility (the gang
    plus any service pool must fit the topology; [Dedicated_sibling]
    needs SMT ≥ 2) and the stack's own {!Svt_core.System.Config.validate}
    are both reported in the config-error vocabulary. Admission is legal
    at any point, including between {!run} calls: a late tenant starts
    with zero entitlement at the current host clock. Auto-names count a
    monotone admission index that never rewinds, so names and PRNG
    streams stay unique across {!remove_tenant} churn. *)

type churn_error = Unknown_tenant of { name : string }

val remove_tenant : t -> name:string -> (tenant_spec, churn_error) result
(** Remove the named tenant, freeing its gang from the next scheduling
    round on and dropping its simulator state. Returns the departing
    tenant's spec — what a cluster needs to re-admit it elsewhere after
    an evacuation. *)

val pp_churn_error : Format.formatter -> churn_error -> unit

val run : t -> horizon:Svt_engine.Time.t -> unit
(** Advance the host clock to [horizon] (or until every tenant program
    finishes — the standard shapes never do). Callable repeatedly to
    extend the run. With no tenants admitted the host idles: the clock
    jumps to [horizon] without counting rounds, keeping a revived
    fleet member's clock in lockstep so later admissions collect no
    back-entitlement. *)

val set_throttle : t -> float -> unit
(** Quantum inflation for a degraded host: every subsequent granted
    slice is scaled by this factor in (0, 1] (1.0 = healthy, the
    default) while the host clock ticks at full speed. Sleeping tenants
    still accrue full quanta. Raises [Invalid_argument] outside
    (0, 1]. *)

val throttle : t -> float

type tenant_report = {
  tenant : string;
  t_mode : Svt_core.Mode.t;
  t_policy : Policy.t;
  t_vcpus : int;
  ops : int;
  kops_per_sec : float;
  exits : int;
  per_exit_us : float;  (** mean virtualization overhead per exit *)
  granted_ms : float;  (** entitlement received *)
  steal_ms : float;  (** runnable but not placed *)
  slept_ms : float;  (** quanta slept through *)
  wake_penalty_us : float;  (** donation wake debt charged *)
  queue_penalty_us : float;  (** shared-pool queueing debt charged *)
  p99_latency_us : float;  (** open-arrival request latency (0 if none) *)
}

type report = {
  elapsed_ms : float;
  r_rounds : int;
  r_cores : int;
  r_smt : int;
  occupancy : float;  (** held thread-quanta / (threads × rounds) *)
  pool_utilization : float;  (** shared-pool demand served / capacity *)
  aggregate_kops : float;
  tenant_reports : tenant_report list;
}

val report : t -> report
(** Consolidation metrics as of the current host clock. *)

val fields : report -> (string * float) list
(** Flat [sched.*] ledger fields (host-wide plus per-tenant). *)

val pp_report : Format.formatter -> report -> unit
(** The consolidation table. *)

(** {2 Accessors} *)

val topology : t -> Topology.t
val quantum : t -> Svt_engine.Time.t
val now : t -> Svt_engine.Time.t
val rounds : t -> int
val n_tenants : t -> int

val events : t -> int
(** Simulator events processed so far, summed over every tenant stack —
    the whole-host work denominator the bench harness rates against
    wall clock. *)

val obs : t -> Svt_obs.Recorder.t
(** The host's own recorder: [Sched_slice] spans tagged with the
    hardware thread ([core]/[ctx]) of every granted slice land here —
    enable the Chrome sink to get one Perfetto track per thread. *)
