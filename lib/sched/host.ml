(* The multi-tenant host: gang-schedules many full nested-virtualization
   stacks (one System per tenant, each with its own simulator and local
   clock) over one hardware-thread topology, on a host virtual clock
   advanced in fixed quanta.

   Determinism. The host never consults wall time or ambient randomness:
   tenants are visited in rotating admission order, placement is a
   greedy first-free scan, and every charge is integer nanoseconds.
   The same topology + tenant specs + horizon therefore produce
   byte-identical reports regardless of process scheduling — which is
   what lets the campaign layer shard consolidation points across worker
   domains.

   Virtual-time ledger. Each tenant carries a monotone local-time
   [target] — the entitlement its stack may simulate up to. Per round:

   - a tenant whose next event lies beyond its target is asleep: the
     quantum accrues to [target] for free (idling needs no hardware);
   - a runnable tenant that wins a gang grab runs
     [System.run_slice ~until:target'] where [target'] advances by the
     quantum scaled down by SMT co-residency ([co_runner_factor] over
     its claimed threads) and by any outstanding penalty debt;
   - a runnable tenant that loses the grab is stolen from: target
     frozen, steal time charged.

   Penalty debt models SVt-thread provisioning costs that the
   single-stack latency model (deliberately) does not see: a donated
   sibling pays a wake latency per trap episode; a shared pool queues
   service demand beyond K threads x quantum. Debt shrinks the next
   grant instead of inflating per-exit latency, so per-exit costs stay
   exactly the paper's figures while aggregate throughput bears the
   provisioning trade-off. *)

module Time = Svt_engine.Time
module Prng = Svt_engine.Prng
module Smt_core = Svt_arch.Smt_core
module Mode = Svt_core.Mode
module System = Svt_core.System
module Nested = Svt_core.Nested
module Machine = Svt_hyp.Machine
module Vcpu = Svt_hyp.Vcpu
module Breakdown = Svt_hyp.Breakdown
module Open_loop = Svt_workloads.Open_loop
module Histogram = Svt_stats.Histogram
module Recorder = Svt_obs.Recorder
module Probe = Svt_obs.Probe
module Span = Svt_obs.Span

type tenant_spec = {
  name : string;
  arch : Svt_arch.Backend.kind;
  mode : Mode.t;
  policy : Policy.t;
  n_vcpus : int;
  shape : Open_loop.shape;
  seed : int;
}

let tenant_spec ?(name = "") ?(arch = Svt_arch.Backend.X86)
    ?(policy = Policy.default) ?(n_vcpus = 1) ?(shape = Open_loop.cpu_bound)
    ?(seed = 0) mode =
  { name; arch; mode; policy; n_vcpus; shape; seed }

type tenant = {
  spec : tenant_spec;
  index : int;
  sys : System.t;
  claim : Policy.claim;
  wake_cost : Time.t;
  counters : Open_loop.counters;
  mutable target : Time.t; (* local-time entitlement high-water mark *)
  mutable debt : Time.t; (* penalty shrinking the next grants *)
  mutable granted : Time.t; (* entitlement actually received *)
  mutable steal : Time.t; (* runnable but not placed *)
  mutable slept : Time.t; (* quanta slept through *)
  mutable finished : bool;
  mutable grants : int;
  mutable last_episodes : int;
  mutable last_svc : Time.t;
  mutable svc : Time.t; (* cumulative SVt-thread service demand *)
  mutable wake_penalty : Time.t;
  mutable queue_penalty : Time.t;
}

type t = {
  topo : Topology.t;
  quantum : Time.t;
  clock : Time.t ref; (* host virtual now *)
  recorder : Recorder.t;
  mutable tenants : tenant list; (* admission order *)
  mutable n_tenants : int;
  mutable admitted : int; (* monotone admission counter, never decremented *)
  mutable throttle : float; (* grant scale in (0, 1]: degraded host < 1 *)
  mutable rounds : int;
  mutable cursor : int; (* rotating grant start, for fairness *)
  mutable busy_thread_quanta : int;
  mutable pool_busy : Time.t;
  mutable pool_capacity : Time.t;
}

let create ?(quantum = Time.of_us 50) ~topology () =
  if Time.(quantum <= Time.zero) then
    invalid_arg "Host.create: quantum must be positive";
  let clock = ref Time.zero in
  {
    topo = topology;
    quantum;
    clock;
    recorder = Recorder.create ~clock:(fun () -> !clock) ();
    tenants = [];
    n_tenants = 0;
    admitted = 0;
    throttle = 1.0;
    rounds = 0;
    cursor = 0;
    busy_thread_quanta = 0;
    pool_busy = Time.zero;
    pool_capacity = Time.zero;
  }

let topology t = t.topo
let quantum t = t.quantum
let now t = !(t.clock)
let rounds t = t.rounds
let obs t = t.recorder
let n_tenants t = t.n_tenants
let throttle t = t.throttle

(* Quantum inflation: a degraded host's quanta buy less tenant progress.
   [factor] multiplies every granted slice, so 0.25 means tenants
   simulate a quarter of the usual entitlement per round while the host
   clock ticks at full speed. Sleeping tenants still accrue full quanta
   (idling needs no hardware, degraded or not). *)
let set_throttle t factor =
  if (not (Float.is_finite factor)) || factor <= 0.0 || factor > 1.0 then
    invalid_arg "Host.set_throttle: factor must be in (0, 1]";
  t.throttle <- factor

let events t =
  List.fold_left
    (fun acc tn ->
      acc + Svt_engine.Simulator.events_processed (System.sim tn.sys))
    0 t.tenants

(* ---- admission ---- *)

(* Host-level feasibility, in System.Config's error vocabulary: the gang
   (plus the policy's global pool) must ever fit the topology, and a
   reserved sibling needs a sibling to reserve. *)
let host_errors t spec claim =
  let smt = Topology.smt_per_core t.topo in
  let errs = ref [] in
  if spec.n_vcpus < 1 then
    errs := System.Config.Invalid_vcpus spec.n_vcpus :: !errs;
  (match (spec.mode, spec.policy) with
  | Mode.Sw_svt _, Policy.Dedicated_sibling when smt < 2 ->
      errs :=
        System.Config.Dedicated_sibling_needs_smt { smt_per_core = smt }
        :: !errs
  | _ -> ());
  let required =
    Policy.gang_threads ~smt_per_core:smt ~n_vcpus:spec.n_vcpus claim
    + claim.Policy.pool_threads
  in
  let available = Topology.n_threads t.topo in
  if spec.n_vcpus > Topology.n_cores t.topo || required > available then
    errs :=
      System.Config.Insufficient_cores
        {
          n_vcpus = spec.n_vcpus;
          cores = Topology.n_cores t.topo;
          required_threads = required;
          available_threads = available;
        }
      :: !errs;
  List.rev !errs

(* Each tenant gets a private simulated machine shaped like its slice of
   the host: one core per vCPU at the host's SMT width. SW SVt stacks
   keep an internal sibling context even on a 1-thread-per-core host
   (their trap-path latency model assumes it — the host-level policy,
   not the stack, decides what that sibling costs); the machine seed is
   derived from the tenant seed and admission index so streams are
   independent and content-stable. *)
let build_system t spec =
  let rng =
    Prng.create
      (0x5c4ed lxor (spec.seed * 0x9E3779B9) lxor (t.admitted * 7919))
  in
  let smt_host = Topology.smt_per_core t.topo in
  let internal_smt =
    match spec.mode with
    | Mode.Baseline | Mode.Hw_full_nesting | Mode.Ooh -> smt_host
    | Mode.Sw_svt _ | Mode.Hw_svt -> max 2 smt_host
  in
  let machine =
    {
      Machine.paper_config with
      Machine.sockets = 1;
      cores_per_socket = max 1 spec.n_vcpus;
      smt_per_core = internal_smt;
      seed = Prng.int rng (1 lsl 30);
    }
  in
  let cfg =
    (* The stack's internal arrangement is always the paper's dedicated
       sibling (its SVt-threads live on its own machine's siblings and
       its latency model assumes them); what the HOST policy changes —
       pool capacity, donation wakes — is charged by the round loop.
       Host-level feasibility of spec.policy is checked in
       [host_errors], against the host topology. *)
    System.Config.make ~arch:spec.arch ~machine ~n_vcpus:spec.n_vcpus
      ~svt_policy:Mode.default_svt_policy ~mode:spec.mode
      ~level:System.L2_nested ()
  in
  match System.Config.validate cfg with
  | Error errs -> Error errs
  | Ok cfg ->
      let sys = System.of_config cfg in
      let counters = Open_loop.counters () in
      for i = 0 to spec.n_vcpus - 1 do
        Open_loop.spawn ~shape:spec.shape
          ~seed:(Prng.int rng (1 lsl 30))
          counters (System.vcpu sys i)
      done;
      Ok (sys, counters)

let add_tenant t spec =
  let claim = Policy.claim ~mode:spec.mode spec.policy in
  match host_errors t spec claim with
  | _ :: _ as errs -> Error errs
  | [] -> (
      match build_system t spec with
      | Error errs -> Error errs
      | Ok (sys, counters) ->
          let name =
            if spec.name = "" then Printf.sprintf "t%d" t.admitted
            else spec.name
          in
          let tn =
            {
              spec = { spec with name };
              index = t.admitted;
              sys;
              claim;
              wake_cost =
                (if claim.Policy.donation then
                   Policy.donation_wake_cost (System.cost sys) spec.mode
                 else Time.zero);
              counters;
              target = Time.zero;
              debt = Time.zero;
              granted = Time.zero;
              steal = Time.zero;
              slept = Time.zero;
              finished = false;
              grants = 0;
              last_episodes = 0;
              last_svc = Time.zero;
              svc = Time.zero;
              wake_penalty = Time.zero;
              queue_penalty = Time.zero;
            }
          in
          t.tenants <- t.tenants @ [ tn ];
          t.n_tenants <- t.n_tenants + 1;
          t.admitted <- t.admitted + 1;
          Ok ())

(* ---- departure ---- *)

type churn_error = Unknown_tenant of { name : string }

let pp_churn_error ppf (Unknown_tenant { name }) =
  Fmt.pf ppf "no tenant named %S is admitted" name

(* Departure frees the tenant's gang from the next round on (placement
   is recomputed each round from the live tenant list); its simulator
   and accounting are dropped with it. The returned spec is what the
   caller needs to re-admit the tenant elsewhere — the cluster's
   evacuation path. The auto-name counter never rewinds, so a tenant
   admitted after a removal cannot collide with a live name or reuse a
   departed tenant's PRNG stream. *)
let remove_tenant t ~name =
  match List.find_opt (fun tn -> tn.spec.name = name) t.tenants with
  | None -> Error (Unknown_tenant { name })
  | Some tn ->
      t.tenants <- List.filter (fun x -> x.spec.name <> name) t.tenants;
      t.n_tenants <- t.n_tenants - 1;
      Ok tn.spec

(* ---- the round loop ---- *)

let each_vcpu tn f =
  for i = 0 to tn.spec.n_vcpus - 1 do
    f (System.vcpu tn.sys i)
  done

(* Greedy first-free gang grab. Whole-core claimers take fully-free
   cores (vCPU on context 0, siblings reserved idle); thread claimers
   take free threads core-major, packing siblings together. All-or-
   nothing: a gang that does not fit leaves the free map untouched. *)
let try_place t free tn =
  let smt = Topology.smt_per_core t.topo in
  let n_cores = Topology.n_cores t.topo in
  let need = tn.spec.n_vcpus in
  if tn.claim.Policy.whole_core then begin
    let picked = ref [] in
    let found = ref 0 in
    for c = 0 to n_cores - 1 do
      if !found < need && Array.for_all Fun.id free.(c) then begin
        picked := c :: !picked;
        incr found
      end
    done;
    if !found < need then None
    else begin
      let cores = List.rev !picked in
      List.iter (fun c -> Array.fill free.(c) 0 smt false) cores;
      Some (List.map (fun c -> (c, 0)) cores)
    end
  end
  else begin
    let picked = ref [] in
    let found = ref 0 in
    for c = 0 to n_cores - 1 do
      for x = 0 to smt - 1 do
        if !found < need && free.(c).(x) then begin
          picked := (c, x) :: !picked;
          incr found
        end
      done
    done;
    if !found < need then None
    else begin
      let slots = List.rev !picked in
      List.iter (fun (c, x) -> free.(c).(x) <- false) slots;
      Some slots
    end
  end

(* SVt-thread service demand so far: what the stack's L1 handlers and
   command channels have consumed — the work a provisioned SVt-thread
   actually performs. *)
let svc_total tn =
  let acc = ref Time.zero in
  each_vcpu tn (fun v ->
      let bd = Vcpu.breakdown v in
      acc :=
        Time.add !acc
          (Time.add
             (Breakdown.time bd Breakdown.L1_handler)
             (Breakdown.time bd Breakdown.Channel)));
  !acc

let episodes_total tn =
  let acc = ref 0 in
  for i = 0 to tn.spec.n_vcpus - 1 do
    acc := !acc + Nested.episodes (System.nested_path tn.sys i)
  done;
  !acc

(* A tenant-less host still ticks: the clock jumps to the horizon so a
   host revived mid-fleet stays in lockstep with its peers — tenants
   admitted later start against the true host now and cannot collect
   back-entitlement for the idle stretch. Rounds are not counted while
   idle (occupancy is over scheduled rounds). *)
let run_idle t ~horizon =
  if Time.(now t < horizon) then t.clock := horizon

let run_busy t ~horizon =
  let topo = t.topo in
  let smt = Topology.smt_per_core topo in
  let n_cores = Topology.n_cores topo in
  let n_threads = Topology.n_threads topo in
  let tenants = Array.of_list t.tenants in
  let n = Array.length tenants in
  let free = Array.init n_cores (fun _ -> Array.make smt true) in
  let probe = Recorder.probe t.recorder in
  let pool =
    Array.fold_left
      (fun acc tn -> max acc tn.claim.Policy.pool_threads)
      0 tenants
  in
  let pool_slots =
    (* the K service threads live on the highest thread ids, away from
       the first-free scan's packing direction *)
    List.init
      (min pool n_threads)
      (fun i ->
        let tid = n_threads - 1 - i in
        (Topology.core_of_thread topo tid, Topology.ctx_of_thread topo tid))
  in
  while
    Time.(now t < horizon)
    && Array.exists (fun tn -> not tn.finished) tenants
  do
    let round_start = now t in
    (* fresh occupancy: clear every thread, then reserve the pool *)
    for c = 0 to n_cores - 1 do
      Array.fill free.(c) 0 smt true;
      for x = 0 to smt - 1 do
        Smt_core.set_ctx_busy (Topology.core topo c) x false
      done
    done;
    List.iter
      (fun (c, x) ->
        free.(c).(x) <- false;
        (* service threads poll/serve continuously: co-resident vCPUs
           see them as busy siblings *)
        Smt_core.set_ctx_busy (Topology.core topo c) x true)
      pool_slots;
    (* classify and place, rotating the start tenant each round *)
    let granted = ref [] in
    for k = 0 to n - 1 do
      let tn = tenants.((t.cursor + k) mod n) in
      if not tn.finished then
        match System.next_event_at tn.sys with
        | None -> tn.finished <- true
        | Some next ->
            (* A future event only means "asleep" when every vCPU is
               architecturally halted (Blocked): an event beyond the
               target can also be a compute slice's completion, and
               computing toward it occupies hardware. *)
            let all_halted = ref true in
            each_vcpu tn (fun v ->
                if Vcpu.run_state v <> Vcpu.Blocked then all_halted := false);
            if Time.(next > tn.target) && !all_halted then begin
              (* asleep past its entitlement: accrues the quantum free *)
              tn.target <- Time.add tn.target t.quantum;
              tn.slept <- Time.add tn.slept t.quantum
            end
            else begin
              match try_place t free tn with
              | Some slots ->
                  granted := (tn, slots) :: !granted;
                  each_vcpu tn (fun v ->
                      if Vcpu.run_state v <> Vcpu.Blocked then
                        Vcpu.set_run_state v Vcpu.Running)
              | None ->
                  tn.steal <- Time.add tn.steal t.quantum;
                  each_vcpu tn (fun v ->
                      if Vcpu.run_state v <> Vcpu.Blocked then begin
                        Vcpu.set_run_state v Vcpu.Runnable;
                        Vcpu.note_steal v t.quantum
                      end)
            end
    done;
    t.cursor <- (t.cursor + 1) mod n;
    let granted = List.rev !granted in
    (* mark the vCPU threads busy so co-residency factors see them *)
    List.iter
      (fun (_, slots) ->
        List.iter
          (fun (c, x) -> Smt_core.set_ctx_busy (Topology.core topo c) x true)
          slots)
      granted;
    (* grant slices *)
    let round_svc = ref [] in
    List.iter
      (fun (tn, slots) ->
        let factor =
          List.fold_left
            (fun acc (c, x) ->
              acc +. Smt_core.co_runner_factor (Topology.core topo c) ~ctx:x)
            0.0 slots
          /. float_of_int (List.length slots)
        in
        let slice = Time.scale t.quantum (t.throttle /. factor) in
        let pay = Time.min tn.debt slice in
        tn.debt <- Time.sub tn.debt pay;
        let eff = Time.sub slice pay in
        tn.grants <- tn.grants + 1;
        tn.granted <- Time.add tn.granted eff;
        if Time.(eff > Time.zero) then begin
          tn.target <- Time.add tn.target eff;
          ignore (System.run_slice tn.sys ~until:tn.target)
        end;
        (* post-slice accounting: service demand and donation wakes *)
        let svc = svc_total tn in
        let dsvc = Time.diff svc tn.last_svc in
        tn.last_svc <- svc;
        tn.svc <- Time.add tn.svc dsvc;
        if tn.claim.Policy.pool_threads > 0 then
          round_svc := (tn, dsvc) :: !round_svc;
        if tn.claim.Policy.donation then begin
          let eps = episodes_total tn in
          let de = eps - tn.last_episodes in
          tn.last_episodes <- eps;
          if de > 0 then begin
            let pen = Time.scale tn.wake_cost (float_of_int de) in
            tn.debt <- Time.add tn.debt pen;
            tn.wake_penalty <- Time.add tn.wake_penalty pen
          end
        end)
      granted;
    (* shared pool: demand beyond K x quantum queues as debt, split
       integer-proportionally (deterministic, order-free) *)
    if pool > 0 then begin
      let cap = Time.scale t.quantum (float_of_int pool) in
      t.pool_capacity <- Time.add t.pool_capacity cap;
      let demand =
        List.fold_left (fun a (_, d) -> Time.add a d) Time.zero !round_svc
      in
      t.pool_busy <- Time.add t.pool_busy (Time.min demand cap);
      if Time.(demand > cap) then begin
        let over = Time.to_ns (Time.diff demand cap) in
        let dn = Time.to_ns demand in
        List.iter
          (fun (tn, d) ->
            let share = Time.of_ns (over * Time.to_ns d / dn) in
            tn.debt <- Time.add tn.debt share;
            tn.queue_penalty <- Time.add tn.queue_penalty share)
          (List.rev !round_svc)
      end
    end;
    (* occupancy: threads held this round (gangs incl. reserved
       siblings, plus the pool) *)
    let held =
      List.fold_left
        (fun acc (tn, _) ->
          acc
          + Policy.gang_threads ~smt_per_core:smt ~n_vcpus:tn.spec.n_vcpus
              tn.claim)
        (List.length pool_slots) granted
    in
    t.busy_thread_quanta <- t.busy_thread_quanta + held;
    (* advance the host clock, then stamp the round's slices *)
    t.clock := Time.add round_start t.quantum;
    t.rounds <- t.rounds + 1;
    if Probe.is_on probe then
      List.iter
        (fun (tn, slots) ->
          List.iter
            (fun (c, x) ->
              Probe.span probe Span.Sched_slice ~vcpu:tn.index ~level:0
                ~core:c ~ctx:x
                ~tags:
                  [
                    ("tenant", tn.spec.name);
                    ("mode", Mode.name tn.spec.mode);
                    ("policy", Policy.name tn.spec.policy);
                  ]
                ~start:round_start ())
            slots)
        granted
  done

let run t ~horizon =
  if t.tenants = [] then run_idle t ~horizon else run_busy t ~horizon

(* ---- consolidation report ---- *)

type tenant_report = {
  tenant : string;
  t_mode : Mode.t;
  t_policy : Policy.t;
  t_vcpus : int;
  ops : int;
  kops_per_sec : float;
  exits : int;
  per_exit_us : float;
  granted_ms : float;
  steal_ms : float;
  slept_ms : float;
  wake_penalty_us : float;
  queue_penalty_us : float;
  p99_latency_us : float;
}

type report = {
  elapsed_ms : float;
  r_rounds : int;
  r_cores : int;
  r_smt : int;
  occupancy : float;
  pool_utilization : float;
  aggregate_kops : float;
  tenant_reports : tenant_report list;
}

let tenant_report elapsed_s tn =
  let overhead = ref Time.zero in
  let exits = ref 0 in
  each_vcpu tn (fun v ->
      let bd = Vcpu.breakdown v in
      overhead :=
        Time.add !overhead
          (Time.diff (Breakdown.total bd) (Breakdown.time bd Breakdown.L2_guest));
      exits := !exits + Breakdown.exits bd);
  {
    tenant = tn.spec.name;
    t_mode = tn.spec.mode;
    t_policy = tn.spec.policy;
    t_vcpus = tn.spec.n_vcpus;
    ops = tn.counters.Open_loop.ops;
    kops_per_sec =
      (if elapsed_s > 0.0 then
         float_of_int tn.counters.Open_loop.ops /. elapsed_s /. 1000.0
       else 0.0);
    exits = !exits;
    per_exit_us =
      (if !exits > 0 then Time.to_us_f !overhead /. float_of_int !exits
       else 0.0);
    granted_ms = Time.to_ms_f tn.granted;
    steal_ms = Time.to_ms_f tn.steal;
    slept_ms = Time.to_ms_f tn.slept;
    wake_penalty_us = Time.to_us_f tn.wake_penalty;
    queue_penalty_us = Time.to_us_f tn.queue_penalty;
    p99_latency_us =
      (if Histogram.count tn.counters.Open_loop.latency > 0 then
         float_of_int (Histogram.p99 tn.counters.Open_loop.latency) /. 1000.0
       else 0.0);
  }

let report t =
  let elapsed_s = Time.to_sec_f (now t) in
  let tenant_reports = List.map (tenant_report elapsed_s) t.tenants in
  {
    elapsed_ms = Time.to_ms_f (now t);
    r_rounds = t.rounds;
    r_cores = Topology.n_cores t.topo;
    r_smt = Topology.smt_per_core t.topo;
    occupancy =
      (if t.rounds > 0 then
         float_of_int t.busy_thread_quanta
         /. float_of_int (Topology.n_threads t.topo * t.rounds)
       else 0.0);
    pool_utilization =
      (if Time.(t.pool_capacity > Time.zero) then
         float_of_int (Time.to_ns t.pool_busy)
         /. float_of_int (Time.to_ns t.pool_capacity)
       else 0.0);
    aggregate_kops =
      List.fold_left (fun a r -> a +. r.kops_per_sec) 0.0 tenant_reports;
    tenant_reports;
  }

(* Flat ledger fields (sched.* namespace). Per-tenant fields are indexed
   by admission order, which the spec fixes, so rows stay diffable. *)
let fields r =
  let host =
    [
      ("sched.elapsed_ms", r.elapsed_ms);
      ("sched.rounds", float_of_int r.r_rounds);
      ("sched.occupancy", r.occupancy);
      ("sched.pool_util", r.pool_utilization);
      ("sched.aggregate_kops", r.aggregate_kops);
    ]
  in
  let per_tenant =
    List.concat_map
      (fun tr ->
        let p k v = (Printf.sprintf "sched.%s.%s" tr.tenant k, v) in
        [
          p "kops" tr.kops_per_sec;
          p "ops" (float_of_int tr.ops);
          p "per_exit_us" tr.per_exit_us;
          p "steal_ms" tr.steal_ms;
          p "wake_us" tr.wake_penalty_us;
          p "queue_us" tr.queue_penalty_us;
        ])
      r.tenant_reports
  in
  host @ per_tenant

let pp_report ppf r =
  Fmt.pf ppf
    "host: %d cores x %d SMT | %.1f ms, %d rounds | occupancy %.1f%%%s | \
     aggregate %.1f kops/s@,"
    r.r_cores r.r_smt r.elapsed_ms r.r_rounds (100.0 *. r.occupancy)
    (if r.pool_utilization > 0.0 then
       Printf.sprintf " | pool %.1f%%" (100.0 *. r.pool_utilization)
     else "")
    r.aggregate_kops;
  Fmt.pf ppf "%-8s %-16s %-18s %5s %9s %12s %9s %9s %9s %9s@," "tenant"
    "mode" "policy" "vcpus" "kops/s" "per-exit(us)" "steal(ms)" "slept(ms)"
    "wake(us)" "queue(us)";
  List.iter
    (fun tr ->
      Fmt.pf ppf "%-8s %-16s %-18s %5d %9.1f %12.2f %9.2f %9.2f %9.1f %9.1f@,"
        tr.tenant
        (Svt_core.Mode.name tr.t_mode)
        (Policy.name tr.t_policy) tr.t_vcpus tr.kops_per_sec tr.per_exit_us
        tr.steal_ms tr.slept_ms tr.wake_penalty_us tr.queue_penalty_us)
    r.tenant_reports
