(** SVt-thread provisioning policies priced as concrete gang claims.
    The type is an alias of {!Svt_core.Mode.svt_policy} (validation
    lives below this layer); naming and parsing delegate there. *)

type t = Svt_core.Mode.svt_policy =
  | Dedicated_sibling
  | Shared_pool of { threads : int }
  | On_demand_donation

val default : t
val name : t -> string
val of_string : string -> (t, string) result

(** What one tenant's vCPU gang occupies under a (mode, policy) pair. *)
type claim = {
  threads_per_vcpu : int;  (** hardware threads pinned per vCPU *)
  whole_core : bool;
      (** the gang claims full cores: reserved siblings admit no
          co-runner (HW SVt, and SW SVt under [Dedicated_sibling]) *)
  pool_threads : int;
      (** host-global SVt service threads this policy reserves *)
  donation : bool;
      (** the sibling is donated to other work and mwait-woken per trap
          episode *)
}

val claim : mode:Svt_core.Mode.t -> t -> claim

val gang_threads : smt_per_core:int -> n_vcpus:int -> claim -> int
(** Hardware threads the gang occupies while granted (excluding the
    host-global pool). *)

val donation_wake_cost : Svt_arch.Cost_model.t -> Svt_core.Mode.t -> Svt_engine.Time.t
(** Per-episode charge of waking a donated (non-parked) SVt-thread:
    wait-entry setup plus the {!Svt_core.Wait} response latency of the
    mode's wait mechanism and placement; zero for non-SW-SVt modes. *)
