(* The host's hardware-thread topology: sockets x cores x SMT threads,
   as a flat array of Smt_core.t running in Smt_mode (several contexts
   fetch concurrently; the per-context states track which threads hold
   runnable work in the current quantum — see Smt_core's host-occupancy
   API). Thread ids are core-major: tid = core * smt_per_core + ctx. *)

module Smt_core = Svt_arch.Smt_core
module Mode = Svt_core.Mode

type t = {
  sockets : int;
  cores_per_socket : int;
  smt_per_core : int;
  cores : Smt_core.t array;
}

let create ?(sockets = 2) ?(cores_per_socket = 8) ?(smt_per_core = 2) () =
  if sockets < 1 || cores_per_socket < 1 || smt_per_core < 1 then
    invalid_arg "Topology.create: all dimensions must be >= 1";
  let n = sockets * cores_per_socket in
  let cores =
    Array.init n (fun id ->
        let c = Smt_core.create ~n_contexts:smt_per_core ~id () in
        Smt_core.set_mode c Smt_core.Smt_mode;
        c)
  in
  { sockets; cores_per_socket; smt_per_core; cores }

let of_machine_config (mc : Svt_hyp.Machine.config) =
  create ~sockets:mc.Svt_hyp.Machine.sockets
    ~cores_per_socket:mc.Svt_hyp.Machine.cores_per_socket
    ~smt_per_core:mc.Svt_hyp.Machine.smt_per_core ()

let sockets t = t.sockets
let cores_per_socket t = t.cores_per_socket
let smt_per_core t = t.smt_per_core
let n_cores t = Array.length t.cores
let n_threads t = Array.length t.cores * t.smt_per_core
let core t i = t.cores.(i)

let thread t ~core ~ctx =
  if core < 0 || core >= n_cores t || ctx < 0 || ctx >= t.smt_per_core then
    invalid_arg "Topology.thread: out of range";
  (core * t.smt_per_core) + ctx

let core_of_thread t tid = tid / t.smt_per_core
let ctx_of_thread t tid = tid mod t.smt_per_core
let numa_node t core = core / t.cores_per_socket

(* Relative placement of two cores in Mode's distance vocabulary — the
   same scale Wait prices channel wake-ups on. *)
let placement t ~core_a ~core_b : Mode.placement =
  if core_a = core_b then Mode.Smt_sibling
  else if numa_node t core_a = numa_node t core_b then Mode.Same_numa_core
  else Mode.Cross_numa

let pp ppf t =
  Fmt.pf ppf "%d socket%s x %d cores x %d SMT (%d hardware threads)"
    t.sockets
    (if t.sockets = 1 then "" else "s")
    t.cores_per_socket t.smt_per_core (n_threads t)
