(** Greedy delta-debugging over a violating input.

    The oracle re-executes a candidate and answers "does this still
    trigger the same violation class?"; shrinking is pure list surgery
    around it (op chunks, then pokes, then plan entries), restarting
    each pass after a successful removal. The result is 1-minimal:
    removing any single remaining op, poke or plan entry un-triggers
    the violation. *)

val minimize : oracle:(Input.t -> bool) -> Input.t -> Input.t
(** [oracle] must be true for the input itself (the violation is
    assumed established by the caller); it is re-invoked on every
    candidate, so a deterministic harness makes shrinking
    deterministic. *)

val trace : Input.t -> string list
(** The printable reproducer: one generator-trace line per op and poke,
    plus the plan — what a violation's ledger row carries. *)
