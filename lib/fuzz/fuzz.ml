(* The fuzzing harness: execute one input through a full System under
   every run mode, fingerprint what the guest observed, detect
   violations, and drive the coverage-guided campaign loop.

   Determinism is the load-bearing property. An input's whole execution
   is a pure function of (master seed, input bytes): the machine and
   fault seeds derive from a hash of both, the simulator is
   deterministic, and the campaign generates inputs sequentially from
   per-index split streams before fanning execution out over the worker
   pool — so `--jobs 2` and a resumed run must produce byte-identical
   ledgers, and any difference is itself a bug (which is exactly what
   the replay check looks for). *)

module Prng = Svt_engine.Prng
module Time = Svt_engine.Time
module Simulator = Svt_engine.Simulator
module System = Svt_core.System
module Mode = Svt_core.Mode
module Nested = Svt_core.Nested
module Guest = Svt_core.Guest
module Vcpu = Svt_hyp.Vcpu
module Machine = Svt_hyp.Machine
module Vmcs = Svt_vmcs.Vmcs
module Coverage = Svt_obs.Coverage
module Gpa = Svt_mem.Addr.Gpa
module Ledger = Svt_campaign.Ledger
module Journal = Svt_campaign.Journal
module Pool = Svt_campaign.Pool
module Heartbeat = Svt_campaign.Heartbeat
module Telemetry = Svt_obs.Telemetry

(* --- violations ---------------------------------------------------------- *)

type violation =
  | Crash of { mode : string; message : string }
      (** an exception escaped the stack (entry-check give-up, protocol
          assertion, ...) *)
  | Exhausted of { mode : string }  (** the per-mode event budget ran out *)
  | Deadlock of { mode : string }
      (** the event queue drained with the guest program unfinished *)
  | Mode_divergence of { a : string; b : string }
      (** a fault-free input observed different values under two modes *)
  | Replay_divergence
      (** re-executing the same input gave a different fingerprint or
          coverage map *)

(* The shrink oracle compares violations by class: same failure kind in
   the same mode, payload (message text) free to vary as the input
   shrinks. *)
let violation_class = function
  | Crash { mode; _ } -> "crash:" ^ mode
  | Exhausted { mode } -> "exhausted:" ^ mode
  | Deadlock { mode } -> "deadlock:" ^ mode
  | Mode_divergence _ -> "mode-divergence"
  | Replay_divergence -> "replay-divergence"

let same_class a b = violation_class a = violation_class b

let violation_to_string = function
  | Crash { mode; message } -> Printf.sprintf "crash:%s: %s" mode message
  | Exhausted { mode } -> "exhausted:" ^ mode
  | Deadlock { mode } -> "deadlock:" ^ mode
  | Mode_divergence { a; b } -> Printf.sprintf "mode-divergence: %s vs %s" a b
  | Replay_divergence -> "replay-divergence"

(* --- single-input execution ---------------------------------------------- *)

(* The differential matrix: every input runs on every (arch, mode) point
   and the semantic fingerprints must agree across ALL of them — the
   guest-visible contract is ISA-independent (fingerprints fold values,
   never timing), so an x86-vs-ARM mismatch is as much a bug as a
   baseline-vs-SVt one. ARM has no HW SVt point (no shadow VMCS for its
   per-level contexts to extend), so that cell does not exist. *)
module Backend = Svt_arch.Backend

let modes =
  [
    (Backend.X86, Mode.Baseline);
    (Backend.X86, Mode.sw_svt_default);
    (Backend.X86, Mode.Hw_svt);
    (Backend.X86, Mode.Ooh);
    (Backend.Arm, Mode.Baseline);
    (Backend.Arm, Mode.sw_svt_default);
    (Backend.Arm, Mode.Ooh);
  ]

(* x86 labels keep their historical spellings (violation classes and
   ledger rows predate the arch axis); ARM points are "arm:"-prefixed. *)
let point_label (arch, mode) =
  if Backend.equal arch Backend.X86 then Mode.name mode
  else Backend.to_string arch ^ ":" ^ Mode.name mode

let default_budget = 300_000

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := mix !h (Int64.of_int (Char.code c)))
    s;
  !h

(* The exec seed is a pure function of (master, input bytes): replay,
   resume and every worker domain all reconstruct the same machine. *)
let input_seed ~master input =
  fnv_string (mix fnv_offset master) (Input.to_string input)

type exec_result = {
  fingerprint : int64;
      (** semantic observations only (cpuid/rdmsr/read/vmcall values,
          serviced kicks) folded across all modes — never timing *)
  coverage : Coverage.t;  (** merged across modes *)
  events : int;  (** simulator events processed, summed across modes *)
  violation : violation option;
}

let run_op vcpu fp served = function
  | Input.Compute_us n -> Guest.compute_us vcpu (float_of_int n)
  | Input.Increments n -> Guest.dependent_increments vcpu n
  | Input.Cpuid leaf ->
      let r = Guest.cpuid vcpu ~leaf in
      fp := mix !fp r.Svt_arch.Cpuid_db.eax;
      fp := mix !fp r.Svt_arch.Cpuid_db.ebx;
      fp := mix !fp r.Svt_arch.Cpuid_db.ecx;
      fp := mix !fp r.Svt_arch.Cpuid_db.edx
  | Input.Wrmsr (i, v) -> Guest.wrmsr vcpu Input.msrs.(i) v
  | Input.Rdmsr i -> fp := mix !fp (Guest.rdmsr vcpu Input.msrs.(i))
  | Input.Io_write (port, v) -> Guest.io_write vcpu ~port v
  | Input.Io_read port -> fp := mix !fp (Guest.io_read vcpu ~port)
  | Input.Mmio_write (a, v) -> Guest.mmio_write32 vcpu (Gpa.of_int a) v
  | Input.Mmio_read a -> fp := mix !fp (Guest.mmio_read32 vcpu (Gpa.of_int a))
  | Input.Page_fault a -> Guest.page_fault vcpu (Gpa.of_int a)
  | Input.Vmcall (nr, arg) -> (
      match Guest.vmcall vcpu ~nr ~arg with
      | None -> fp := mix !fp 0x5AL
      | Some r -> fp := mix !fp r)
  | Input.Sleep_us n ->
      Guest.arm_timer vcpu ~after:(Time.of_us n);
      Guest.hlt vcpu
  | Input.Hlt -> Guest.hlt vcpu
  | Input.Kick vector ->
      (* the 1 µs compute gives the host event an interruptible point to
         land on inside this program *)
      Vcpu.enqueue_host_event vcpu ~vector (fun () -> incr served);
      Guest.compute_us vcpu 1.0

let run_mode ~budget ~machine_seed ~fault_seed ~arch ~mode (input : Input.t) =
  let machine = { Machine.paper_config with Machine.seed = machine_seed } in
  let sys =
    System.of_config
      (System.Config.make ~arch ~machine ~faults:input.Input.plan ~fault_seed
         ~max_sim_events:budget ~mode ~level:System.L2_nested ())
  in
  let cov = Coverage.create () in
  Coverage.attach cov (System.probe sys);
  let vmcs12 = Nested.vmcs12 (System.nested_path sys 0) in
  List.iter (fun (i, v) -> Vmcs.write vmcs12 Input.fields.(i) v) input.Input.pokes;
  (* unsalted: two modes executing the same program must produce the
     same observation stream, so equal fps across modes is the
     correctness criterion *)
  let fp = ref fnv_offset in
  let served = ref 0 in
  let completed = ref false in
  Vcpu.spawn_program (System.vcpu0 sys) (fun vcpu ->
      List.iter (run_op vcpu fp served) input.Input.ops;
      fp := mix !fp (Int64.of_int !served);
      completed := true);
  let fate =
    (* The simulator never raises Deadlock for a parked process: a hung
       program just stops scheduling events and [run] returns with the
       queue drained — so "finished without completing" IS the deadlock
       signal. *)
    match System.run sys with
    | () -> if !completed then `Ok else `Deadlock
    | exception Simulator.Budget_exhausted _ -> `Exhausted
    | exception exn -> `Crash (Printexc.to_string exn)
  in
  (!fp, cov, Simulator.events_processed (System.sim sys), fate)

let exec ?(budget = default_budget) ~master (input : Input.t) =
  let rng = Prng.of_seed (input_seed ~master input) in
  let machine_seed = Prng.int rng (1 lsl 30) in
  let fault_seed = Prng.next_int64 rng in
  let coverage = Coverage.create () in
  let events = ref 0 in
  let fingerprint = ref fnv_offset in
  let fps = ref [] in
  let violation = ref None in
  List.iter
    (fun ((arch, mode) as point) ->
      let label = point_label point in
      let fp, cov, evs, fate =
        run_mode ~budget ~machine_seed ~fault_seed ~arch ~mode input
      in
      ignore (Coverage.merge_into ~into:coverage cov : int);
      events := !events + evs;
      fingerprint := mix !fingerprint fp;
      (match fate with
      | `Ok -> fps := (label, fp) :: !fps
      | `Deadlock ->
          if !violation = None then violation := Some (Deadlock { mode = label })
      | `Exhausted ->
          if !violation = None then
            violation := Some (Exhausted { mode = label })
      | `Crash message ->
          if !violation = None then
            violation := Some (Crash { mode = label; message })))
    modes;
  (* Mode-vs-mode divergence is only meaningful fault-free: an active
     plan legitimately perturbs what each mode observes (a dropped ring
     command exists in SW SVt only). The guest-visible semantics must
     be identical across modes (Mode's contract), so any fingerprint
     mismatch on a clean run is a real protocol bug. *)
  (if !violation = None && Svt_fault.Plan.is_empty input.Input.plan then
     match List.rev !fps with
     | (m0, fp0) :: rest -> (
         match List.find_opt (fun (_, fp) -> fp <> fp0) rest with
         | Some (m1, _) -> violation := Some (Mode_divergence { a = m0; b = m1 })
         | None -> ())
     | [] -> ());
  {
    fingerprint = !fingerprint;
    coverage;
    events = !events;
    violation = !violation;
  }

(* --- campaign ------------------------------------------------------------ *)

(* Fixed round size, independent of [jobs]: inputs are generated
   sequentially from the corpus snapshot at the round barrier, executed
   in parallel, and folded back in index order — so worker count can
   change scheduling but never results. Rows hit the journal once per
   round, progress row last: a crash costs at most one round of work
   and resume re-runs it identically. *)
let round_size = 8

type stats = {
  execs : int;
  kept : int;
  violations : int;
  cov_bits : int;
  events : int;
  rounds : int;
  interrupted : bool;  (** [max_rounds] stopped the run before [batch] *)
}

type state = {
  corpus : Corpus.t;
  global : Coverage.t;
  mutable execs : int;
  mutable kept : int;
  mutable violations : int;
  mutable events : int;
}

(* Input [idx] is a pure function of (seed, idx, corpus-at-round-start):
   a keyed split stream per index, spent on either fresh generation or
   the mutation of a drawn corpus parent. *)
let gen_input ~gen_cfg ~seed st idx =
  let rng = Prng.of_split seed ~index:idx in
  if Corpus.size st.corpus > 0 && Prng.bernoulli rng 0.5 then
    match Corpus.pick st.corpus rng with
    | Some parent -> Gen.mutate ~cfg:gen_cfg rng parent
    | None -> Gen.gen ~cfg:gen_cfg rng
  else Gen.gen ~cfg:gen_cfg rng

(* Salvage a torn journal down to its last complete round and rebuild
   the in-memory state from the kept rows. Kept rows persist their own
   coverage maps, so nothing is re-executed. *)
let restore st path =
  let rcv = Ledger.recover path in
  let entries = rcv.Ledger.entries in
  let last_progress = ref (-1) in
  List.iteri
    (fun i e ->
      match Corpus.classify e with
      | Ok (Some (Corpus.Progress _)) -> last_progress := i
      | _ -> ())
    entries;
  let prefix = List.filteri (fun i _ -> i <= !last_progress) entries in
  Journal.rewrite path prefix;
  List.iter
    (fun e ->
      match Corpus.classify e with
      | Ok (Some (Corpus.Kept { input; cov; _ })) ->
          ignore (Coverage.merge_into ~into:st.global cov : int);
          Corpus.add st.corpus input
      | Ok
          (Some
             (Corpus.Progress
                { next_index = _; execs; kept; violations; events })) ->
          st.execs <- execs;
          st.kept <- kept;
          st.violations <- violations;
          st.events <- events
      | _ -> ())
    prefix

let harness_failure message =
  {
    fingerprint = 0L;
    coverage = Coverage.create ();
    events = 0;
    violation = Some (Crash { mode = "harness"; message });
  }

let campaign ?(gen_cfg = Gen.default) ?(budget = default_budget) ?(jobs = 1)
    ?ledger ?(resume = false) ?max_rounds ?(telemetry_every = 0)
    ?(log = fun _ -> ()) ~seed ~batch () =
  let st =
    {
      corpus = Corpus.create ();
      global = Coverage.create ();
      execs = 0;
      kept = 0;
      violations = 0;
      events = 0;
    }
  in
  let journal =
    match ledger with
    | None -> None
    | Some path ->
        if resume && Sys.file_exists path then begin
          restore st path;
          Some (Journal.create path)
        end
        else Some (Journal.create ~truncate:true path)
  in
  let rounds = ref 0 in
  let interrupted = ref false in
  while st.execs < batch && not !interrupted do
    if match max_rounds with Some m -> !rounds >= m | None -> false then
      interrupted := true
    else begin
      let r = min round_size (batch - st.execs) in
      let base = st.execs in
      let inputs = Array.init r (fun j -> gen_input ~gen_cfg ~seed st (base + j)) in
      let run =
        Pool.map ~jobs ~retries:0
          (fun input -> exec ~budget ~master:seed input)
          inputs
      in
      let rows = ref [] in
      Array.iteri
        (fun j outcome ->
          let index = base + j in
          let input = inputs.(j) in
          let res =
            match outcome with
            | Some { Pool.result = Ok res; _ } -> res
            | Some { Pool.result = Error exn; _ } ->
                harness_failure (Printexc.to_string exn)
            | None -> harness_failure "not executed"
          in
          st.events <- st.events + res.events;
          match res.violation with
          | Some v ->
              st.violations <- st.violations + 1;
              let shrunk =
                match v with
                | Replay_divergence -> input
                | _ ->
                    let oracle cand =
                      match (exec ~budget ~master:seed cand).violation with
                      | Some v' -> same_class v v'
                      | None -> false
                    in
                    Shrink.minimize ~oracle input
              in
              rows :=
                Corpus.violation_entry ~index
                  ~violation:(violation_to_string v) ~input ~shrunk
                :: !rows
          | None ->
              if Coverage.adds_coverage ~global:st.global res.coverage then begin
                (* replay gate: a kept input must reproduce itself
                   exactly before it may steer future generations *)
                let again = exec ~budget ~master:seed input in
                if
                  again.fingerprint <> res.fingerprint
                  || not (Coverage.equal again.coverage res.coverage)
                then begin
                  st.violations <- st.violations + 1;
                  rows :=
                    Corpus.violation_entry ~index
                      ~violation:(violation_to_string Replay_divergence)
                      ~input ~shrunk:input
                    :: !rows
                end
                else begin
                  let added = Coverage.merge_into ~into:st.global res.coverage in
                  Corpus.add st.corpus input;
                  st.kept <- st.kept + 1;
                  rows :=
                    Corpus.kept_entry ~index ~bits_added:added
                      ~events:res.events ~cov:res.coverage input
                    :: !rows
                end
              end)
        run.Pool.outcomes;
      st.execs <- st.execs + r;
      (* Telemetry heartbeat, placed *before* the progress barrier so a
         torn-journal restore (which truncates to the last complete
         round) keeps it. Only deterministic fields — everything here is
         a pure function of the folded round stream — so --jobs N and
         resumed campaigns stay byte-identical with telemetry on. The
         round ordinal is derived from [execs] (not the in-memory round
         counter, which restarts on resume). *)
      (let round_no = (st.execs + round_size - 1) / round_size in
       if telemetry_every > 0 && round_no mod telemetry_every = 0 then begin
         let telem = Telemetry.create () in
         Telemetry.set telem "execs" (float_of_int st.execs);
         Telemetry.set telem "kept" (float_of_int st.kept);
         Telemetry.set telem "violations" (float_of_int st.violations);
         Telemetry.set telem "cov_bits"
           (float_of_int (Coverage.bits st.global));
         Telemetry.set telem "events" (float_of_int st.events);
         Telemetry.set telem "corpus_size"
           (float_of_int (Corpus.size st.corpus));
         Telemetry.set telem "rounds" (float_of_int round_no);
         rows :=
           Heartbeat.entry ~source:"fuzz" ~seq:round_no
             (Telemetry.snapshot telem)
           :: !rows
       end);
      rows :=
        Corpus.progress_entry ~next_index:st.execs ~execs:st.execs
          ~kept:st.kept ~violations:st.violations
          ~cov_bits:(Coverage.bits st.global) ~events:st.events
        :: !rows;
      (match journal with
      | Some j -> List.iter (Journal.append j) (List.rev !rows)
      | None -> ());
      incr rounds;
      log
        (Printf.sprintf "round %d: execs=%d kept=%d cov=%d violations=%d"
           !rounds st.execs st.kept (Coverage.bits st.global) st.violations)
    end
  done;
  (match journal with Some j -> Journal.close j | None -> ());
  {
    execs = st.execs;
    kept = st.kept;
    violations = st.violations;
    cov_bits = Coverage.bits st.global;
    events = st.events;
    rounds = !rounds;
    interrupted = !interrupted;
  }
