(* Seeded input generation and mutation. Everything draws from the
   caller's Prng stream and nothing else, so a (seed, index) pair names
   an input forever — the corpus only ever stores what this module can
   regenerate.

   The one semantic constraint lives here: a plan containing [drop-irq]
   is never paired with a waiting program ([Sleep_us]/[Hlt]), because a
   legitimately dropped wakeup IRQ hangs the guest in a way the harness
   cannot tell from a real deadlock. *)

module Prng = Svt_engine.Prng
module Plan = Svt_fault.Plan
module Kind = Svt_fault.Kind

type cfg = {
  max_ops : int;  (** program length is drawn from [1..max_ops] *)
  poke_prob : float;  (** probability an input carries vmcs12 pokes *)
  fault_prob : float;  (** probability an input carries a fault plan *)
  allow_hlt : bool;
      (** permit the bare [Hlt] op — a guaranteed hang the deadlock
          detector must catch; off by default so ordinary campaigns
          report zero violations *)
}

let default = { max_ops = 12; poke_prob = 0.25; fault_prob = 0.5; allow_hlt = false }

(* Drawing pools kept deliberately small: the coverage map keys on
   handler paths, not values, so a few representative arguments explore
   the same space as the full range while keeping reproducers short. *)

let cpuid_leaves = [| 0; 1; 2; 4; 7; 0x4000_0000; 0x8000_0000 |]
let page = Svt_mem.Addr.page_size

let gpa rng = (16 + Prng.int rng 48) * page

let poke_values rng =
  match Prng.int rng 4 with
  | 0 -> 0L
  | 1 -> 1L
  | 2 -> -1L
  | _ -> Int64.of_int (Prng.int rng 0x10000)

let gen_op cfg rng =
  let n = if cfg.allow_hlt then 13 else 12 in
  match Prng.int rng n with
  | 0 -> Input.Compute_us (1 + Prng.int rng 20)
  | 1 -> Input.Increments (1 + Prng.int rng 2000)
  | 2 -> Input.Cpuid (Prng.pick rng cpuid_leaves)
  | 3 ->
      Input.Wrmsr (Prng.int rng Input.n_msrs, Int64.of_int (Prng.int rng 0x10000))
  | 4 -> Input.Rdmsr (Prng.int rng Input.n_msrs)
  | 5 -> Input.Io_write (Prng.int rng 1024, Prng.int rng 256)
  | 6 -> Input.Io_read (Prng.int rng 1024)
  | 7 -> Input.Mmio_write (gpa rng, Prng.int rng 256)
  | 8 -> Input.Mmio_read (gpa rng)
  | 9 -> Input.Page_fault (gpa rng)
  | 10 -> Input.Vmcall (Prng.int rng 8, Int64.of_int (Prng.int rng 0x1000))
  | 11 -> Input.Sleep_us (1 + Prng.int rng 50)
  | _ -> Input.Hlt

let gen_pokes cfg rng =
  if not (Prng.bernoulli rng cfg.poke_prob) then []
  else
    let n = 1 + Prng.int rng 2 in
    List.init n (fun _ -> (Prng.int rng Input.n_fields, poke_values rng))

(* Rebuild a plan without [kind]; plans come off the centi-grid
   generator, so the string round trip is exact. *)
let strip_kind plan kind =
  Plan.entries plan
  |> List.filter (fun (k, _) -> k <> kind)
  |> List.map (fun (k, r) -> Printf.sprintf "%s:%g" (Kind.name k) r)
  |> String.concat "," |> Plan.of_string_exn

let constrain input =
  if Input.has_wait input && Plan.rate input.Input.plan Kind.Drop_irq > 0.0
  then { input with Input.plan = strip_kind input.Input.plan Kind.Drop_irq }
  else input

let gen ?(cfg = default) rng =
  let n_ops = 1 + Prng.int rng cfg.max_ops in
  let ops = List.init n_ops (fun _ -> gen_op cfg rng) in
  let pokes = gen_pokes cfg rng in
  let plan = if Prng.bernoulli rng cfg.fault_prob then Plan.gen rng else Plan.empty in
  constrain { Input.ops; pokes; plan }

(* One mutation step over a kept input: splice/drop/replace an op, redraw
   the pokes, or mutate the plan. Always at least one op survives (an
   empty program exercises nothing). *)
let mutate ?(cfg = default) rng (input : Input.t) =
  let ops = Array.of_list input.Input.ops in
  let n = Array.length ops in
  let mutated =
    match Prng.int rng 5 with
    | 0 ->
        (* splice a fresh op at a random position *)
        let at = Prng.int rng (n + 1) in
        let op = gen_op cfg rng in
        let l = Array.to_list ops in
        let rec ins i = function
          | rest when i = 0 -> op :: rest
          | [] -> [ op ]
          | x :: rest -> x :: ins (i - 1) rest
        in
        { input with Input.ops = ins at l }
    | 1 when n > 1 ->
        let at = Prng.int rng n in
        { input with
          Input.ops =
            Array.to_list ops |> List.filteri (fun i _ -> i <> at) }
    | 2 ->
        let at = Prng.int rng n in
        ops.(at) <- gen_op cfg rng;
        { input with Input.ops = Array.to_list ops }
    | 3 -> { input with Input.pokes = gen_pokes cfg rng }
    | _ -> { input with Input.plan = Plan.mutate rng input.Input.plan }
  in
  constrain mutated
