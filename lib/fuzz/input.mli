(** A fuzz input: a guest program over the architectural op vocabulary,
    vmcs12 pokes applied before the first entry, and a fault plan.

    Inputs are plain data with an exact one-line text form — the corpus
    persists them in ledger rows, and the shrinker rewrites them — so
    {!of_string} [∘] {!to_string} is the structural identity for
    everything {!Gen} can produce. *)

(** One guest operation = one architectural event ([Sleep_us] is the one
    compound: a timer arm plus the HLT that waits for it). *)
type op =
  | Compute_us of int  (** straight-line computation, microseconds *)
  | Increments of int  (** dependent register increments *)
  | Cpuid of int  (** cpuid leaf *)
  | Wrmsr of int * int64  (** index into {!msrs} x value *)
  | Rdmsr of int  (** index into {!msrs} *)
  | Io_write of int * int  (** port x value *)
  | Io_read of int
  | Mmio_write of int * int  (** gpa x value *)
  | Mmio_read of int
  | Page_fault of int  (** gpa *)
  | Vmcall of int * int64  (** nr x arg *)
  | Sleep_us of int  (** arm the TSC-deadline timer, then HLT *)
  | Hlt  (** bare HLT: hangs unless something wakes the vCPU *)
  | Kick of int  (** enqueue a host event (an interrupt for L1) *)

type t = {
  ops : op list;
  pokes : (int * int64) list;
      (** vmcs12 pokes: index into {!Svt_vmcs.Field.all} x raw value *)
  plan : Svt_fault.Plan.t;
}

val empty : t

val msrs : Svt_arch.Msr.t array
(** The MSRs a fuzzed program may touch ([Wrmsr]/[Rdmsr] indices).
    Excludes IA32_TSC (reads the clock — timing, not semantics),
    IA32_TSC_DEADLINE (absolute-deadline arming; [Sleep_us] covers the
    timer path safely) and IA32_APIC_BASE. *)

val n_msrs : int

val fields : Svt_vmcs.Field.t array
(** [Svt_vmcs.Field.all] as an array (poke indices). *)

val n_fields : int
val op_to_string : op -> string
val op_of_string : string -> (op, string) result

val to_string : t -> string
(** One line: [ops|pokes|plan]. *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t
val equal : t -> t -> bool

val steps : t -> int
(** Reproducer size: ops + pokes. *)

val has_wait : t -> bool
(** Whether the program contains a waiting op ([Sleep_us] or [Hlt]) —
    the generator must then keep [drop-irq] out of the plan, because a
    legitimately dropped wakeup is indistinguishable from a hang. *)

val pp : Format.formatter -> t -> unit
