(* The corpus: kept inputs in memory, and their persistent form as
   campaign-ledger rows. A fuzz journal is an ordinary JSONL ledger —
   CRC'd rows, `Ledger.recover`-able — whose rows come in three
   flavours distinguished by the point's workload name:

     "fuzz"           a kept (new-coverage) input; `data.input` is the
                      serialized input, `data.cov` its coverage bitmap
     "fuzz-violation" a violating input with its shrunk reproducer
     "fuzz-progress"  a round barrier: everything before it is a
                      complete round, so resume restarts from
                      `fuzz.next_index`

   Keeping the corpus in the campaign ledger (rather than a bespoke
   format) is what makes resume free: the journal machinery already
   knows how to salvage the longest intact prefix of a torn file. *)

module Ledger = Svt_campaign.Ledger
module Spec = Svt_campaign.Spec
module Coverage = Svt_obs.Coverage
module Prng = Svt_engine.Prng

type t = { mutable inputs : Input.t array; mutable n : int }

let create () = { inputs = Array.make 16 Input.empty; n = 0 }
let size t = t.n
let get t i = t.inputs.(i)

let add t input =
  if t.n = Array.length t.inputs then begin
    let bigger = Array.make (2 * t.n) Input.empty in
    Array.blit t.inputs 0 bigger 0 t.n;
    t.inputs <- bigger
  end;
  t.inputs.(t.n) <- input;
  t.n <- t.n + 1

let pick t rng = if t.n = 0 then None else Some t.inputs.(Prng.int rng t.n)

(* --- ledger rows --------------------------------------------------------- *)

(* Every row is content-addressed the campaign way: the input's global
   index rides the point's [seed] axis and the plan rides [fault], so
   run_ids are unique and stable. Mode/level on the point are
   conventional (execution spans all three modes). *)
let point ~workload ~index ~fault =
  Spec.point ~workload ~seed:index ~fault Svt_core.Mode.Baseline

let base_entry ~workload ~index ~fault ~status ~error ~metrics ~data =
  let p = point ~workload ~index ~fault in
  {
    Ledger.run_id = Spec.run_id p;
    point = p;
    status;
    error;
    attempts = 1;
    wall_s = 0.0;  (* pinned: fuzz ledgers must be byte-reproducible *)
    metrics;
    data;
  }

let kept_entry ~index ~bits_added ~events ~cov input =
  base_entry ~workload:"fuzz" ~index
    ~fault:(Svt_fault.Plan.to_string input.Input.plan)
    ~status:"ok" ~error:None
    ~metrics:
      [
        ("fuzz.index", float_of_int index);
        ("fuzz.bits_added", float_of_int bits_added);
        ("fuzz.events", float_of_int events);
      ]
    ~data:
      [ ("input", Input.to_string input); ("cov", Coverage.to_hex cov) ]

let violation_entry ~index ~violation ~input ~shrunk =
  base_entry ~workload:"fuzz-violation" ~index
    ~fault:(Svt_fault.Plan.to_string input.Input.plan)
    ~status:"failed" ~error:(Some violation)
    ~metrics:
      [
        ("fuzz.index", float_of_int index);
        ("fuzz.shrunk_steps", float_of_int (Input.steps shrunk));
      ]
    ~data:
      [
        ("input", Input.to_string input);
        ("shrunk", Input.to_string shrunk);
        ("trace", String.concat "\n" (Shrink.trace shrunk));
      ]

let progress_entry ~next_index ~execs ~kept ~violations ~cov_bits ~events =
  base_entry ~workload:"fuzz-progress" ~index:next_index ~fault:""
    ~status:"ok" ~error:None
    ~metrics:
      [
        ("fuzz.next_index", float_of_int next_index);
        ("fuzz.execs", float_of_int execs);
        ("fuzz.kept", float_of_int kept);
        ("fuzz.violations", float_of_int violations);
        ("fuzz.cov_bits", float_of_int cov_bits);
        ("fuzz.events", float_of_int events);
      ]
    ~data:[]

type row =
  | Kept of { index : int; input : Input.t; cov : Coverage.t }
  | Violation of { index : int; input : Input.t; shrunk : Input.t }
  | Progress of {
      next_index : int;
      execs : int;
      kept : int;
      violations : int;
      events : int;
    }

let metric_int e name =
  let v = Ledger.metric e name in
  if Float.is_nan v then Error (Printf.sprintf "row missing %s" name)
  else Ok (int_of_float v)

let data_field e name =
  match List.assoc_opt name e.Ledger.data with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "row missing data.%s" name)

let classify (e : Ledger.entry) =
  let ( let* ) = Result.bind in
  match e.Ledger.point.Spec.workload with
  | "fuzz" ->
      let* index = metric_int e "fuzz.index" in
      let* input_s = data_field e "input" in
      let* input = Input.of_string input_s in
      let* cov_s = data_field e "cov" in
      Ok (Some (Kept { index; input; cov = Coverage.of_hex cov_s }))
  | "fuzz-violation" ->
      let* index = metric_int e "fuzz.index" in
      let* input_s = data_field e "input" in
      let* input = Input.of_string input_s in
      let* shrunk_s = data_field e "shrunk" in
      let* shrunk = Input.of_string shrunk_s in
      Ok (Some (Violation { index; input; shrunk }))
  | "fuzz-progress" ->
      let* next_index = metric_int e "fuzz.next_index" in
      let* execs = metric_int e "fuzz.execs" in
      let* kept = metric_int e "fuzz.kept" in
      let* violations = metric_int e "fuzz.violations" in
      let* events = metric_int e "fuzz.events" in
      Ok (Some (Progress { next_index; execs; kept; violations; events }))
  | _ -> Ok None
