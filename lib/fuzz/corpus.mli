(** The corpus: kept inputs in memory, and their persistent form as
    campaign-ledger rows.

    A fuzz journal is an ordinary JSONL ledger — CRC'd rows that
    {!Svt_campaign.Ledger.recover} can salvage — whose rows come in
    three flavours distinguished by the point's workload name: ["fuzz"]
    (a kept new-coverage input, with the serialized input and its
    coverage bitmap under [data]), ["fuzz-violation"] (a violating
    input plus its shrunk reproducer and trace), and ["fuzz-progress"]
    (a round barrier: everything before it is a complete round, so
    resume restarts from [fuzz.next_index]). *)

type t

val create : unit -> t
val size : t -> int
val get : t -> int -> Input.t
val add : t -> Input.t -> unit

val pick : t -> Svt_engine.Prng.t -> Input.t option
(** A uniformly drawn kept input (mutation parent); [None] while the
    corpus is empty. *)

(** {2 Ledger rows} *)

val kept_entry :
  index:int ->
  bits_added:int ->
  events:int ->
  cov:Svt_obs.Coverage.t ->
  Input.t ->
  Svt_campaign.Ledger.entry

val violation_entry :
  index:int ->
  violation:string ->
  input:Input.t ->
  shrunk:Input.t ->
  Svt_campaign.Ledger.entry

val progress_entry :
  next_index:int ->
  execs:int ->
  kept:int ->
  violations:int ->
  cov_bits:int ->
  events:int ->
  Svt_campaign.Ledger.entry

type row =
  | Kept of { index : int; input : Input.t; cov : Svt_obs.Coverage.t }
  | Violation of { index : int; input : Input.t; shrunk : Input.t }
  | Progress of {
      next_index : int;
      execs : int;
      kept : int;
      violations : int;
      events : int;
    }

val classify :
  Svt_campaign.Ledger.entry -> (row option, string) result
(** Decode a salvaged ledger row; [Ok None] for rows some other tool
    wrote into the same file. *)
