(** The fuzzing harness and campaign loop.

    {!exec} runs one input through a full nested stack under every run
    mode (baseline, SW SVt, HW SVt), merging coverage and folding the
    guest's semantic observations — cpuid/rdmsr/read/vmcall values,
    never timing — into a fingerprint. An input's whole execution is a
    pure function of (master seed, input bytes), which is what makes
    [--jobs N] and resumed campaigns byte-identical, replay a meaningful
    gate, and shrinking deterministic. *)

(** An invariant violation the harness can detect. *)
type violation =
  | Crash of { mode : string; message : string }
      (** an exception escaped the stack (entry-check give-up, protocol
          assertion, ...) *)
  | Exhausted of { mode : string }  (** the per-mode event budget ran out *)
  | Deadlock of { mode : string }
      (** the event queue drained with the guest program unfinished *)
  | Mode_divergence of { a : string; b : string }
      (** a fault-free input observed different values under two modes *)
  | Replay_divergence
      (** re-executing the same input gave a different fingerprint or
          coverage map *)

val violation_class : violation -> string
(** The shrink oracle's equivalence: failure kind + mode, message text
    free to vary as the input shrinks. *)

val same_class : violation -> violation -> bool
val violation_to_string : violation -> string

val modes : (Svt_arch.Backend.kind * Svt_core.Mode.t) list
(** The (arch, mode) points every input runs under: all four modes on
    x86 plus baseline / SW SVt / OoH on ARM NV/VHE (ARM has no HW SVt
    point — no shadow VMCS for its per-level contexts to extend). The
    semantic fingerprint must agree across the whole matrix. *)

val point_label : Svt_arch.Backend.kind * Svt_core.Mode.t -> string
(** Label used in violations and ledger rows: x86 points keep their
    historical bare mode names; ARM points are ["arm:"]-prefixed. *)

val default_budget : int
(** Per-mode simulator event budget (fuel). *)

type exec_result = {
  fingerprint : int64;
      (** semantic observations only (cpuid/rdmsr/read/vmcall values,
          serviced kicks) folded across all modes — never timing *)
  coverage : Svt_obs.Coverage.t;  (** merged across modes *)
  events : int;  (** simulator events processed, summed across modes *)
  violation : violation option;
}

val input_seed : master:int64 -> Input.t -> int64
(** The exec seed: a hash of (master, input bytes), so replay, resume
    and every worker domain reconstruct the same machine. *)

val exec : ?budget:int -> master:int64 -> Input.t -> exec_result

(** {2 Campaign} *)

val round_size : int
(** Inputs per journal round (8). Fixed and independent of [jobs]:
    generation is sequential at the round barrier, execution fans out,
    results fold back in index order — so worker count can change
    scheduling but never the ledger. *)

type stats = {
  execs : int;
  kept : int;
  violations : int;
  cov_bits : int;
  events : int;
  rounds : int;
  interrupted : bool;  (** [max_rounds] stopped the run before [batch] *)
}

val campaign :
  ?gen_cfg:Gen.cfg ->
  ?budget:int ->
  ?jobs:int ->
  ?ledger:string ->
  ?resume:bool ->
  ?max_rounds:int ->
  ?telemetry_every:int ->
  ?log:(string -> unit) ->
  seed:int64 ->
  batch:int ->
  unit ->
  stats
(** Run a coverage-guided campaign of [batch] inputs. With [ledger],
    every round appends its kept/violation rows plus a progress barrier
    to the journal; [resume] salvages a torn journal down to its last
    complete round ({!Svt_campaign.Ledger.recover} + atomic rewrite),
    rebuilds the corpus and global map from the kept rows without
    re-executing anything, and continues — producing a final ledger
    byte-identical to an uninterrupted run. Violating inputs are shrunk
    in-line (deterministically) before their row is written.

    [telemetry_every = n] (default 0 = off) adds a
    {!Svt_campaign.Heartbeat} row every [n] rounds, just before the
    round's progress barrier so torn-journal restore keeps it. Fuzz
    heartbeats carry only fields that are pure functions of the folded
    round stream (execs, kept, violations, cov_bits, events, corpus
    size, round number), so ledgers stay byte-identical across [jobs]
    and resume even with telemetry on. *)
