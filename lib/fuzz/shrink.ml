(* Greedy delta-debugging over a violating input. The oracle re-executes
   a candidate and answers "does this still trigger the same violation
   class?"; shrinking is pure list surgery around it, so the module has
   no dependency on the harness and stays trivially testable.

   Order of attack: op chunks (halves, then smaller, down to singles),
   then pokes one at a time, then plan entries one at a time. Each pass
   restarts whenever something was removed, so the result is 1-minimal:
   removing any single remaining op, poke or plan entry un-triggers the
   violation. *)

module Plan = Svt_fault.Plan
module Kind = Svt_fault.Kind

let drop_range l lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) l

let plan_without plan kind =
  Plan.entries plan
  |> List.filter (fun (k, _) -> k <> kind)
  |> List.map (fun (k, r) -> Printf.sprintf "%s:%g" (Kind.name k) r)
  |> String.concat "," |> Plan.of_string_exn

(* Try removing op chunks of [len]; restart the scan on success (earlier
   removals can enable later ones). *)
let rec shrink_ops ~oracle (input : Input.t) len =
  if len = 0 then input
  else
    let n = List.length input.Input.ops in
    let rec scan lo =
      if lo >= n then None
      else
        let candidate =
          { input with Input.ops = drop_range input.Input.ops lo len }
        in
        if candidate.Input.ops <> input.Input.ops && oracle candidate then
          Some candidate
        else scan (lo + len)
    in
    match scan 0 with
    | Some smaller -> shrink_ops ~oracle smaller len
    | None -> shrink_ops ~oracle input (len / 2)

let rec shrink_pokes ~oracle (input : Input.t) =
  let n = List.length input.Input.pokes in
  let rec scan i =
    if i >= n then None
    else
      let candidate =
        { input with Input.pokes = drop_range input.Input.pokes i 1 }
      in
      if oracle candidate then Some candidate else scan (i + 1)
  in
  match scan 0 with
  | Some smaller -> shrink_pokes ~oracle smaller
  | None -> input

let rec shrink_plan ~oracle (input : Input.t) =
  let entries = Plan.entries input.Input.plan in
  let rec scan = function
    | [] -> None
    | (k, _) :: rest ->
        let candidate =
          { input with Input.plan = plan_without input.Input.plan k }
        in
        if oracle candidate then Some candidate else scan rest
  in
  match scan entries with
  | Some smaller -> shrink_plan ~oracle smaller
  | None -> input

let minimize ~oracle input =
  let n = List.length input.Input.ops in
  let input = shrink_ops ~oracle input (max 1 (n / 2)) in
  let input = shrink_pokes ~oracle input in
  shrink_plan ~oracle input

(* The printable reproducer: one generator-trace line per op and poke,
   plus the plan — what a violation's ledger row carries so a human (or
   a regression test) can replay the minimal input without the fuzzer. *)
let trace (input : Input.t) =
  let ops =
    List.mapi
      (fun i op -> Printf.sprintf "  op[%d] %s" i (Input.op_to_string op))
      input.Input.ops
  in
  let pokes =
    List.map
      (fun (i, v) ->
        Printf.sprintf "  poke %s = 0x%Lx"
          (Svt_vmcs.Field.name Input.fields.(i))
          v)
      input.Input.pokes
  in
  let plan =
    if Plan.is_empty input.Input.plan then []
    else [ Printf.sprintf "  plan %s" (Plan.to_string input.Input.plan) ]
  in
  ops @ pokes @ plan
