(* A fuzz input: a straight-line guest program over the architectural op
   vocabulary, a set of vmcs12 pokes applied before the first entry, and
   a fault plan. Inputs are plain data with an exact one-line text form:
   the corpus persists them in ledger rows and the shrinker rewrites
   them, so [of_string (to_string i) = i] must hold structurally for
   everything the generator can produce. *)

(* One guest operation = one architectural event (or a short fixed
   compound, flagged below). Arguments are integers so serialization is
   exact; compute spans are microseconds, GPAs are raw page-aligned
   integers. *)
type op =
  | Compute_us of int  (** straight-line computation, microseconds *)
  | Increments of int  (** dependent register increments *)
  | Cpuid of int  (** cpuid leaf *)
  | Wrmsr of int * int64  (** index into {!msrs} x value *)
  | Rdmsr of int  (** index into {!msrs} *)
  | Io_write of int * int  (** port x value *)
  | Io_read of int
  | Mmio_write of int * int  (** gpa x value *)
  | Mmio_read of int
  | Page_fault of int  (** gpa *)
  | Vmcall of int * int64  (** nr x arg *)
  | Sleep_us of int  (** arm the TSC-deadline timer, then HLT *)
  | Hlt  (** bare HLT: hangs unless something wakes the vCPU *)
  | Kick of int  (** enqueue a host event (an interrupt for L1) *)

type t = {
  ops : op list;
  pokes : (int * int64) list;
      (** vmcs12 pokes: index into {!Svt_vmcs.Field.all} x raw value,
          written before the program starts (the entry checks see them
          on the next transform) *)
  plan : Svt_fault.Plan.t;
}

let empty = { ops = []; pokes = []; plan = Svt_fault.Plan.empty }

(* MSRs a fuzzed program may touch. IA32_TSC reads the virtual clock
   (timing, not semantics — it would poison the fingerprint),
   IA32_TSC_DEADLINE writes arm the timer at an absolute instant (the
   [Sleep_us] op exercises that path with a sane relative deadline), and
   IA32_APIC_BASE relocates the LAPIC. All three stay out. *)
let msrs =
  [|
    Svt_arch.Msr.Ia32_efer;
    Svt_arch.Msr.Ia32_sysenter_cs;
    Svt_arch.Msr.Ia32_sysenter_esp;
    Svt_arch.Msr.Ia32_sysenter_eip;
    Svt_arch.Msr.Ia32_star;
    Svt_arch.Msr.Ia32_lstar;
    Svt_arch.Msr.Ia32_gs_base;
    Svt_arch.Msr.Ia32_kernel_gs_base;
    Svt_arch.Msr.Ia32_spec_ctrl;
  |]

let n_msrs = Array.length msrs

let fields = Array.of_list Svt_vmcs.Field.all
let n_fields = Array.length fields

let op_to_string = function
  | Compute_us n -> Printf.sprintf "cu:%d" n
  | Increments n -> Printf.sprintf "inc:%d" n
  | Cpuid leaf -> Printf.sprintf "cpuid:%d" leaf
  | Wrmsr (i, v) -> Printf.sprintf "wrmsr:%d:%Lx" i v
  | Rdmsr i -> Printf.sprintf "rdmsr:%d" i
  | Io_write (p, v) -> Printf.sprintf "iow:%d:%d" p v
  | Io_read p -> Printf.sprintf "ior:%d" p
  | Mmio_write (a, v) -> Printf.sprintf "mmw:%x:%d" a v
  | Mmio_read a -> Printf.sprintf "mmr:%x" a
  | Page_fault a -> Printf.sprintf "pf:%x" a
  | Vmcall (nr, arg) -> Printf.sprintf "vmcall:%d:%Lx" nr arg
  | Sleep_us n -> Printf.sprintf "sleep:%d" n
  | Hlt -> "hlt"
  | Kick v -> Printf.sprintf "kick:%d" v

let op_of_string s =
  let fail () = Error (Printf.sprintf "bad op %S" s) in
  let int_of s = int_of_string_opt s in
  let hex_of s = int_of_string_opt ("0x" ^ s) in
  let hex64_of s = Int64.of_string_opt ("0x" ^ s) in
  match String.split_on_char ':' s with
  | [ "cu"; n ] -> (
      match int_of n with Some n -> Ok (Compute_us n) | None -> fail ())
  | [ "inc"; n ] -> (
      match int_of n with Some n -> Ok (Increments n) | None -> fail ())
  | [ "cpuid"; n ] -> (
      match int_of n with Some n -> Ok (Cpuid n) | None -> fail ())
  | [ "wrmsr"; i; v ] -> (
      match (int_of i, hex64_of v) with
      | Some i, Some v -> Ok (Wrmsr (i, v))
      | _ -> fail ())
  | [ "rdmsr"; i ] -> (
      match int_of i with Some i -> Ok (Rdmsr i) | None -> fail ())
  | [ "iow"; p; v ] -> (
      match (int_of p, int_of v) with
      | Some p, Some v -> Ok (Io_write (p, v))
      | _ -> fail ())
  | [ "ior"; p ] -> (
      match int_of p with Some p -> Ok (Io_read p) | None -> fail ())
  | [ "mmw"; a; v ] -> (
      match (hex_of a, int_of v) with
      | Some a, Some v -> Ok (Mmio_write (a, v))
      | _ -> fail ())
  | [ "mmr"; a ] -> (
      match hex_of a with Some a -> Ok (Mmio_read a) | None -> fail ())
  | [ "pf"; a ] -> (
      match hex_of a with Some a -> Ok (Page_fault a) | None -> fail ())
  | [ "vmcall"; nr; arg ] -> (
      match (int_of nr, hex64_of arg) with
      | Some nr, Some arg -> Ok (Vmcall (nr, arg))
      | _ -> fail ())
  | [ "sleep"; n ] -> (
      match int_of n with Some n -> Ok (Sleep_us n) | None -> fail ())
  | [ "hlt" ] -> Ok Hlt
  | [ "kick"; v ] -> (
      match int_of v with Some v -> Ok (Kick v) | None -> fail ())
  | _ -> fail ()

(* One line, three [|]-separated sections: ops (space-separated tokens),
   pokes ([fieldindex=hexvalue]), fault plan (its own canonical
   grammar). No section's tokens contain [|] or spaces. *)
let to_string t =
  let ops = String.concat " " (List.map op_to_string t.ops) in
  let pokes =
    String.concat " "
      (List.map (fun (i, v) -> Printf.sprintf "%d=%Lx" i v) t.pokes)
  in
  ops ^ "|" ^ pokes ^ "|" ^ Svt_fault.Plan.to_string t.plan

let of_string s =
  let ( let* ) = Result.bind in
  let tokens part =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' part)
  in
  match String.split_on_char '|' s with
  | [ ops_s; pokes_s; plan_s ] ->
      let* ops =
        List.fold_left
          (fun acc tok ->
            let* acc = acc in
            let* op = op_of_string tok in
            Ok (op :: acc))
          (Ok []) (tokens ops_s)
      in
      let* pokes =
        List.fold_left
          (fun acc tok ->
            let* acc = acc in
            match String.split_on_char '=' tok with
            | [ i; v ] -> (
                match (int_of_string_opt i, Int64.of_string_opt ("0x" ^ v)) with
                | Some i, Some v when i >= 0 && i < n_fields ->
                    Ok ((i, v) :: acc)
                | _ -> Error (Printf.sprintf "bad poke %S" tok))
            | _ -> Error (Printf.sprintf "bad poke %S" tok))
          (Ok []) (tokens pokes_s)
      in
      let* plan = Svt_fault.Plan.of_string plan_s in
      Ok { ops = List.rev ops; pokes = List.rev pokes; plan }
  | _ -> Error "input: expected ops|pokes|plan"

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg ("Input." ^ e)

let equal a b =
  a.ops = b.ops && a.pokes = b.pokes
  && Svt_fault.Plan.entries a.plan = Svt_fault.Plan.entries b.plan

let steps t = List.length t.ops + List.length t.pokes

let has_wait t =
  List.exists (function Sleep_us _ | Hlt -> true | _ -> false) t.ops

let pp ppf t = Format.pp_print_string ppf (to_string t)
