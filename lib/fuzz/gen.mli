(** Seeded input generation and mutation.

    Everything draws from the caller's {!Svt_engine.Prng} stream and
    nothing else, so a (seed, index) pair names an input forever. The
    generator enforces the harness's one semantic constraint: a plan
    containing [drop-irq] is never paired with a waiting program
    ({!Input.has_wait}), because a legitimately dropped wakeup IRQ is
    indistinguishable from a real hang. *)

type cfg = {
  max_ops : int;  (** program length is drawn from [1..max_ops] *)
  poke_prob : float;  (** probability an input carries vmcs12 pokes *)
  fault_prob : float;  (** probability an input carries a fault plan *)
  allow_hlt : bool;
      (** permit the bare [Hlt] op — a guaranteed hang the deadlock
          detector must catch; off by default so ordinary campaigns
          report zero violations *)
}

val default : cfg
(** [{ max_ops = 12; poke_prob = 0.25; fault_prob = 0.5;
      allow_hlt = false }]. About half of generated inputs are
    fault-free, which is what keeps the mode-divergence check armed. *)

val gen : ?cfg:cfg -> Svt_engine.Prng.t -> Input.t

val mutate : ?cfg:cfg -> Svt_engine.Prng.t -> Input.t -> Input.t
(** One mutation step over a kept input: splice/drop/replace an op,
    redraw the pokes, or mutate the plan. At least one op survives. *)
