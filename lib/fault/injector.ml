(* The injector owns all fault randomness. Each kind draws from its own
   PRNG stream so one site's draws never perturb another's: adding
   drop-ring to a plan leaves the corrupt-vmcs12 decision sequence
   untouched, which keeps sweep axes comparable run to run.

   An injector built from the empty plan is inert: [roll] is a single
   load-and-branch, no streams are consulted, no outcomes recorded, so
   instrumented call sites cost nothing in clean runs. *)

module Prng = Svt_engine.Prng

type t = {
  plan : Plan.t;
  active : bool;
  rates : float array; (* by Kind.index *)
  streams : Prng.t array; (* by Kind.index; only built when active *)
  counts : int array; (* by Outcome.index *)
  mutable observer : (Outcome.t -> unit) option;
}

let create ?(seed = 0L) plan =
  let active = not (Plan.is_empty plan) in
  let rates = Array.make Kind.n 0.0 in
  List.iter
    (fun (k, r) -> rates.(Kind.index k) <- r)
    (Plan.entries plan);
  (* Keyed splitting by kind index: stream k is a pure function of
     (seed, k), so sibling streams stay independent — the old additive
     salt made seeds differing by the salt delta alias across kinds. *)
  let streams =
    if active then
      Array.init Kind.n (fun i -> Prng.of_split seed ~index:i)
    else [||]
  in
  { plan; active; rates; streams; counts = Array.make Outcome.n 0;
    observer = None }

let none () = create Plan.empty
let is_active t = t.active
let plan t = t.plan
let set_observer t f = t.observer <- Some f

let record t outcome =
  t.counts.(Outcome.index outcome) <- t.counts.(Outcome.index outcome) + 1;
  match t.observer with None -> () | Some f -> f outcome

let roll t kind =
  t.active
  &&
  let i = Kind.index kind in
  t.rates.(i) > 0.0
  && Prng.bernoulli t.streams.(i) t.rates.(i)
  &&
  (record t (Outcome.Injected kind);
   true)

let pick t kind n = Prng.int t.streams.(Kind.index kind) n
let count t outcome = t.counts.(Outcome.index outcome)

let counts t =
  List.filter_map
    (fun o ->
      let c = count t o in
      if c > 0 then Some (Outcome.name o, c) else None)
    Outcome.all

let fields t =
  List.map (fun (name, c) -> ("fault." ^ name, float_of_int c)) (counts t)
