(* The typed fault-outcome taxonomy: what the handling side actually did
   about a fault. [Injected k] records the fault firing at its site; the
   rest record graceful-degradation events — retries, discards, the
   SVt→baseline downgrade, the reflected VM-entry failure. Outcome
   counts are exported as `fault.*` ledger fields and obs spans, so
   sweeps can plot goodput against fault rate. *)

type t =
  | Injected of Kind.t
  | Backpressure_retry (* ring full: producer backed off and re-posted *)
  | Resume_retry (* watchdog re-posted CMD_VM_TRAP after a timeout *)
  | Downgrade (* episode fell back from SVt to baseline reflection *)
  | Entry_fail_reflected (* invalid vmcs12 reflected to L1 as entry failure *)
  | Stale_ignored (* out-of-sequence ring command discarded *)
  | Corrupt_discarded (* unparseable ring entry discarded *)
  | Irq_recovered (* lost vector re-delivered after the guest's timeout *)
  | Delegation_fault_reflected
    (* OoH: a corrupted delegated VMCS field surfaced to L1 as a
       delegation fault (L1 repairs and re-enters), not an L0 abort *)

let extras =
  [ Backpressure_retry; Resume_retry; Downgrade; Entry_fail_reflected;
    Stale_ignored; Corrupt_discarded; Irq_recovered;
    Delegation_fault_reflected ]

let all = List.map (fun k -> Injected k) Kind.all @ extras
let n = Kind.n + List.length extras

let index = function
  | Injected k -> Kind.index k
  | Backpressure_retry -> Kind.n
  | Resume_retry -> Kind.n + 1
  | Downgrade -> Kind.n + 2
  | Entry_fail_reflected -> Kind.n + 3
  | Stale_ignored -> Kind.n + 4
  | Corrupt_discarded -> Kind.n + 5
  | Irq_recovered -> Kind.n + 6
  | Delegation_fault_reflected -> Kind.n + 7

let name = function
  | Injected k -> "injected." ^ Kind.name k
  | Backpressure_retry -> "backpressure-retry"
  | Resume_retry -> "resume-retry"
  | Downgrade -> "downgrade"
  | Entry_fail_reflected -> "entry-fail-reflected"
  | Stale_ignored -> "stale-ignored"
  | Corrupt_discarded -> "corrupt-discarded"
  | Irq_recovered -> "irq-recovered"
  | Delegation_fault_reflected -> "delegation-fault-reflected"

let pp ppf t = Fmt.string ppf (name t)
