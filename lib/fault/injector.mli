(** Seeded fault injector. Owns all fault randomness: each kind draws
    from its own deterministic PRNG stream (so one site's draws never
    perturb another's) and every injection/degradation outcome is
    counted for export. An injector built from {!Plan.empty} is inert —
    {!roll} is a single branch and nothing is recorded — so fault hooks
    cost nothing in clean runs. *)

type t

val create : ?seed:int64 -> Plan.t -> t
val none : unit -> t
(** Inert injector (empty plan). *)

val is_active : t -> bool
val plan : t -> Plan.t

val set_observer : t -> (Outcome.t -> unit) -> unit
(** Called on every {!record} (used to emit obs spans). *)

val roll : t -> Kind.t -> bool
(** Bernoulli draw from [kind]'s stream against its plan rate. A [true]
    result records [Injected kind]. Always [false] when inert. *)

val pick : t -> Kind.t -> int -> int
(** Uniform draw in [0, n) from [kind]'s stream, for choosing a fault
    variant after {!roll} fired. Only valid on an active injector. *)

val record : t -> Outcome.t -> unit
(** Count a degradation outcome (retry, downgrade, discard, ...). *)

val count : t -> Outcome.t -> int

val counts : t -> (string * int) list
(** Nonzero outcome counts in {!Outcome.all} order. *)

val fields : t -> (string * float) list
(** {!counts} as [("fault." ^ name, count)] ledger fields. *)
