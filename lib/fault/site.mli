(** Injection sites: the trust boundaries of the SVt protocol (command
    rings, the guest-supplied vmcs12, interrupt injection, and the
    SVT_BLOCKED handshake). Each {!Kind.t} of fault anchors at exactly
    one site. *)

type t = Ring_send | Ring_recv | Vmcs12 | Irq | Blocked

val all : t list
val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit
