(** Fault kinds: what can go wrong at each {!Site.t}. The [name] of a
    kind is its plan-grammar token ([drop-ring:0.01]). *)

type t =
  | Drop_ring  (** a posted ring command is silently lost *)
  | Dup_ring  (** a posted ring command is delivered twice *)
  | Delay_ring  (** ring delivery delayed by {!param_ns} virtual ns *)
  | Corrupt_ring  (** the serialized command code is smashed *)
  | Corrupt_vmcs12
      (** a vmcs12 field is corrupted before the entry transform *)
  | Drop_irq  (** a guest vector is lost before injection *)
  | Spurious_irq  (** an extra, unsolicited vector is injected *)
  | Stall_blocked  (** the SVT_BLOCKED handshake leg stalls *)

val all : t list
val n : int

val index : t -> int
(** Dense 0-based index, for per-kind arrays. *)

val name : t -> string
val of_name : string -> t option
val site : t -> Site.t

val param_ns : t -> int
(** Fixed virtual-clock magnitude of the kind (delay/stall/recovery
    span); 0 for kinds without one. Part of the model, not of the plan,
    so plans stay comparable. *)

val pp : Format.formatter -> t -> unit
