(* The trust boundaries of the SVt protocol where faults are injected —
   the surface NecoFuzz-style fuzzers exercise on real nested stacks:
   the command rings of §5.2 (both directions), the vmcs12 descriptor L1
   hands to L0, the interrupt-injection path, and the SVT_BLOCKED
   handshake of §5.3. *)

type t = Ring_send | Ring_recv | Vmcs12 | Irq | Blocked

let all = [ Ring_send; Ring_recv; Vmcs12; Irq; Blocked ]

let name = function
  | Ring_send -> "ring-send"
  | Ring_recv -> "ring-recv"
  | Vmcs12 -> "vmcs12"
  | Irq -> "irq"
  | Blocked -> "blocked"

let of_name s = List.find_opt (fun x -> name x = s) all
let pp ppf t = Fmt.string ppf (name t)
