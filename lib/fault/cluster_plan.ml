(* A cluster fault plan: per-kind Bernoulli rates rolled once per host
   per fleet epoch, parsed from the same `kind:rate[,...]` grammar as
   the stack-level [Plan]. The empty plan is the common case and costs
   nothing downstream. Entries are kept sorted by kind index with zero
   rates dropped, so equal plans print equally and share run_ids.

   [split_of_string] parses a *combined* plan string in which stack and
   cluster kinds may be mixed on one comma list (the campaign fault
   axis carries both vocabularies). Canonical combined form: stack
   entries first (in [Plan]'s canonical order), then cluster entries —
   so a pure stack plan canonicalizes exactly as before and historical
   run_ids survive. *)

type t = (Cluster_kind.t * float) list

let empty = []
let is_empty t = t = []
let entries t = t
let rate t k = match List.assoc_opt k t with Some r -> r | None -> 0.0

let canon entries =
  entries
  |> List.filter (fun (_, r) -> r > 0.0)
  |> List.sort (fun (a, _) (b, _) ->
         compare (Cluster_kind.index a) (Cluster_kind.index b))

let known_names =
  String.concat ", " (List.map Cluster_kind.name Cluster_kind.all)

let parse_item item =
  let item = String.trim item in
  match String.index_opt item ':' with
  | None -> Error (Printf.sprintf "fault %S: expected kind:rate" item)
  | Some i -> (
      let kname = String.sub item 0 i in
      let rate_s = String.sub item (i + 1) (String.length item - i - 1) in
      match Cluster_kind.of_name kname with
      | None ->
          Error
            (Printf.sprintf "unknown cluster fault kind %S (expected one of %s)"
               kname known_names)
      | Some k -> (
          match float_of_string_opt rate_s with
          | None ->
              Error
                (Printf.sprintf "fault %s: rate %S is not a number" kname rate_s)
          | Some r when (not (Float.is_finite r)) || r < 0.0 || r > 1.0 ->
              Error
                (Printf.sprintf "fault %s: rate %s out of [0, 1]" kname rate_s)
          | Some r -> Ok (k, r)))

let of_string s =
  if String.trim s = "" then Ok empty
  else begin
    let items =
      String.split_on_char ',' s |> List.filter (fun x -> String.trim x <> "")
    in
    let rec go acc = function
      | [] -> Ok (canon (List.rev acc))
      | item :: rest -> (
          match parse_item item with
          | Error e -> Error e
          | Ok (k, _) when List.mem_assoc k acc ->
              Error
                (Printf.sprintf "fault %s given twice" (Cluster_kind.name k))
          | Ok kv -> go (kv :: acc) rest)
    in
    go [] items
  end

let of_string_exn s =
  match of_string s with Ok p -> p | Error e -> failwith e

let to_string t =
  String.concat ","
    (List.map
       (fun (k, r) -> Printf.sprintf "%s:%g" (Cluster_kind.name k) r)
       t)

(* ---- the combined stack + cluster grammar ---- *)

(* Partition one comma list between the two vocabularies by kind name,
   then let each side's own parser enforce its rules (rates in [0,1],
   no duplicate kinds). An item naming neither vocabulary reports the
   cluster-side error, which lists both failure modes. *)
let split_of_string s =
  let items =
    if String.trim s = "" then []
    else
      String.split_on_char ',' s |> List.filter (fun x -> String.trim x <> "")
  in
  let kind_name item =
    let item = String.trim item in
    match String.index_opt item ':' with
    | None -> item
    | Some i -> String.sub item 0 i
  in
  let stack_items, cluster_items =
    List.partition (fun it -> Kind.of_name (kind_name it) <> None) items
  in
  match Plan.of_string (String.concat "," stack_items) with
  | Error e -> Error e
  | Ok stack -> (
      match of_string (String.concat "," cluster_items) with
      | Error e -> Error e
      | Ok cluster -> Ok (stack, cluster))

let combined_to_string stack cluster =
  match (Plan.to_string stack, to_string cluster) with
  | "", c -> c
  | s, "" -> s
  | s, c -> s ^ "," ^ c

let pp ppf t = Fmt.string ppf (to_string t)
