(** Deterministic, human-readable summary of an injector's outcome
    counts (stable {!Outcome.all} order). *)

val pp : Format.formatter -> Injector.t -> unit
val to_string : Injector.t -> string
