(* Human-readable fault summary, deterministic (Outcome.all order). *)

let pp ppf inj =
  match Injector.counts inj with
  | [] -> Fmt.pf ppf "no faults recorded"
  | counts ->
      Fmt.pf ppf "@[<v>";
      List.iteri
        (fun i (name, c) ->
          if i > 0 then Fmt.cut ppf ();
          Fmt.pf ppf "%-28s %d" name c)
        counts;
      Fmt.pf ppf "@]"

let to_string inj = Fmt.str "%a" pp inj
