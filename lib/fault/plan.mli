(** A fault plan: per-kind Bernoulli rates, parsed from the
    [kind:rate[,kind:rate,...]] grammar shared by [svt_sim faults
    --plan] and the campaign [fault] axis. *)

type t

val empty : t
(** No faults. Systems built with the empty plan behave bit-identically
    to systems built without an injector at all. *)

val is_empty : t -> bool
val entries : t -> (Kind.t * float) list
val rate : t -> Kind.t -> float

val of_string : string -> (t, string) result
(** Parse ["drop-ring:0.01,corrupt-vmcs12:0.05"]. The empty string is
    {!empty}. Unknown kinds, unparseable or out-of-range rates, and
    duplicate kinds are reported as [Error]. *)

val of_string_exn : string -> t

val gen : Svt_engine.Prng.t -> t
(** Seeded random plan (0–3 kinds, centi-grid rates in (0, 0.2]) in
    canonical form: the fuzzer's plan generator. Rates on the centi-grid
    survive {!to_string}/{!of_string} exactly. *)

val mutate : Svt_engine.Prng.t -> t -> t
(** One seeded mutation step — add a kind, drop a kind, or re-draw one
    rate — returning a canonical (and therefore round-trippable) plan.
    The fuzzer's corpus mutator calls this on kept inputs' plans. *)

val to_string : t -> string
(** Canonical form: entries sorted by kind, zero rates dropped;
    round-trips through {!of_string}. *)

val pp : Format.formatter -> t -> unit
