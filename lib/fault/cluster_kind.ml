(* Cluster-scope fault kinds. Where [Kind] anchors faults at injection
   sites inside one nested stack, these strike whole simulated hosts in
   a fleet: a host crashes and loses its tenants, degrades (its
   scheduling quantum buys less tenant progress — quantum inflation), or
   flaps (a short outage that repeats, the classic quarantine bait).
   Names double as plan-grammar tokens (`host-crash:0.01`), sharing the
   `kind:rate` spelling with the stack-level grammar so one campaign
   fault axis can carry both vocabularies.

   Magnitudes (outage lengths, the inflation factor) are fixed model
   parameters, like [Kind.param_ns]: rates vary per plan, magnitudes do
   not, so two plans with the same rates are comparable. They are
   denominated in fleet epochs — the cluster's scheduling round — not
   nanoseconds, because that is the granularity at which a fleet
   observes and repairs them. *)

type t =
  | Host_crash (* the host dies; every tenant on it is evacuated *)
  | Host_degrade (* quantum inflation: entitlement per round shrinks *)
  | Host_flap (* a short, repeating outage *)

let all = [ Host_crash; Host_degrade; Host_flap ]
let n = List.length all
let index = function Host_crash -> 0 | Host_degrade -> 1 | Host_flap -> 2

let name = function
  | Host_crash -> "host-crash"
  | Host_degrade -> "host-degrade"
  | Host_flap -> "host-flap"

let of_name s = List.find_opt (fun k -> name k = s) all

(* Outage spans, in fleet epochs. A crash needs detection, reboot and
   rejoin (long); a flap is a blip that clears almost immediately — its
   danger is the repetition, which the failure-window quarantine exists
   to catch. Degrade has no outage: the host stays up, slower. *)
let outage_epochs = function
  | Host_crash -> 40
  | Host_flap -> 2
  | Host_degrade -> 0

(* How long a degrade episode lasts, and how much it inflates the
   quantum: granted entitlement per round is divided by the factor. *)
let degrade_epochs = 25
let degrade_inflation = 4.0

let pp ppf t = Fmt.string ppf (name t)
