(** Cluster fault plan: per-kind Bernoulli rates, rolled once per host
    per fleet epoch by the cluster simulator. Shares the
    [kind:rate[,kind:rate...]] grammar with the stack-level {!Plan};
    {!split_of_string} parses a combined string mixing both
    vocabularies, which is what the campaign fault axis carries. *)

type t

val empty : t
val is_empty : t -> bool

val entries : t -> (Cluster_kind.t * float) list
(** Canonical order: by {!Cluster_kind.index}, zero rates dropped. *)

val rate : t -> Cluster_kind.t -> float
(** 0.0 for kinds not in the plan. *)

val of_string : string -> (t, string) result
(** Parse [kind:rate[,...]] using cluster kind names only. Rates must
    be finite and in [0, 1]; duplicate kinds are rejected. The empty
    string is {!empty}. *)

val of_string_exn : string -> t

val to_string : t -> string
(** Canonical form: round-trips through {!of_string}. [""] for
    {!empty}. *)

val split_of_string : string -> (Plan.t * t, string) result
(** Parse a combined plan whose comma list may mix stack kinds
    ({!Kind}) and cluster kinds ({!Cluster_kind}) in any order. Each
    side canonicalizes independently; a pure stack plan yields
    [(plan, empty)] with exactly the historical canonical form, so
    existing run_ids survive. *)

val combined_to_string : Plan.t -> t -> string
(** Canonical combined form: stack entries first, then cluster
    entries. *)

val pp : Format.formatter -> t -> unit
