(** The typed fault-outcome taxonomy: injected faults plus the
    graceful-degradation events the handling side took in response.
    Counts surface as [fault.<name>] ledger fields and obs spans. *)

type t =
  | Injected of Kind.t  (** the fault fired at its site *)
  | Backpressure_retry
      (** ring full: the producer backed off and re-posted *)
  | Resume_retry
      (** the stall watchdog re-posted CMD_VM_TRAP after a timeout *)
  | Downgrade
      (** an episode fell back from SVt to baseline reflection *)
  | Entry_fail_reflected
      (** an invalid vmcs12 was reflected to L1 as a VM-entry failure *)
  | Stale_ignored  (** an out-of-sequence ring command was discarded *)
  | Corrupt_discarded  (** an unparseable ring entry was discarded *)
  | Irq_recovered
      (** a lost vector was re-delivered after the guest's own timeout *)
  | Delegation_fault_reflected
      (** OoH: a corrupted delegated VMCS field surfaced to L1 as a
          delegation fault (L1 repairs and re-enters) instead of an L0
          entry abort *)

val all : t list
val n : int

val index : t -> int
(** Dense 0-based index, for per-outcome counters. *)

val name : t -> string
(** Stable dashed name ("injected.drop-ring", "downgrade", ...). *)

val pp : Format.formatter -> t -> unit
