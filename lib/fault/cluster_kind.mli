(** Cluster-scope fault kinds: faults that strike whole simulated hosts
    in a fleet rather than one site inside a stack. Names double as the
    plan-grammar tokens ([host-crash:0.01]); magnitudes (outage spans,
    the degrade inflation factor) are fixed model parameters so plans
    differing only in rates stay comparable. *)

type t =
  | Host_crash  (** the host dies; every tenant on it is evacuated *)
  | Host_degrade
      (** quantum inflation: each scheduling round grants tenants
          [1/degrade_inflation] of the normal entitlement *)
  | Host_flap  (** a short, repeating outage — quarantine bait *)

val all : t list
val n : int
val index : t -> int
val name : t -> string
val of_name : string -> t option

val outage_epochs : t -> int
(** Fleet epochs a struck host stays down (0 for [Host_degrade]: the
    host stays up, slower). *)

val degrade_epochs : int
(** Epochs one degrade episode lasts. *)

val degrade_inflation : float
(** Quantum-inflation factor of a degraded host: granted entitlement
    per round is divided by this. *)

val pp : Format.formatter -> t -> unit
