(* A fault plan: per-kind Bernoulli rates, parsed from the CLI/axis
   grammar `kind:rate[,kind:rate,...]`. The empty plan is the common
   case and must cost nothing downstream — an injector built from it
   answers every [roll] with a single branch. Entries are kept sorted by
   kind index and zero rates dropped, so equal plans print equally. *)

type t = (Kind.t * float) list

let empty = []
let is_empty t = t = []
let entries t = t
let rate t k = match List.assoc_opt k t with Some r -> r | None -> 0.0

let known_names = String.concat ", " (List.map Kind.name Kind.all)

(* Canonical form: kind order, zero rates dropped — the invariant every
   constructor below must restore so equal plans print equally. *)
let canon entries =
  entries
  |> List.filter (fun (_, r) -> r > 0.0)
  |> List.sort (fun (a, _) (b, _) -> compare (Kind.index a) (Kind.index b))

(* --- seeded generation and mutation (the fuzzer's plan hooks) --------- *)

(* Rates are drawn on a centi-grid in (0, 0.2]: coarse enough that
   to_string's %g spelling round-trips exactly through of_string, small
   enough that degradation machinery (watchdogs, retries) still
   terminates runs. *)
let random_rate rng = float_of_int (Svt_engine.Prng.int_in_range rng ~lo:1 ~hi:20) /. 100.0

let gen rng =
  let n = Svt_engine.Prng.int_in_range rng ~lo:0 ~hi:3 in
  let kinds = Array.of_list Kind.all in
  Svt_engine.Prng.shuffle rng kinds;
  canon (List.init n (fun i -> (kinds.(i), random_rate rng)))

let mutate rng t =
  let add_entry entries =
    match
      List.filter (fun k -> not (List.mem_assoc k entries)) Kind.all
    with
    | [] -> entries
    | absent -> (Svt_engine.Prng.pick rng (Array.of_list absent), random_rate rng) :: entries
  in
  let drop_entry = function
    | [] -> []
    | entries ->
        let victim = Svt_engine.Prng.int rng (List.length entries) in
        List.filteri (fun i _ -> i <> victim) entries
  in
  let perturb_entry = function
    | [] -> []
    | entries ->
        let i = Svt_engine.Prng.int rng (List.length entries) in
        List.mapi
          (fun j (k, r) -> if j = i then (k, random_rate rng) else (k, r))
          entries
  in
  let entries =
    match Svt_engine.Prng.int rng 3 with
    | 0 -> add_entry t
    | 1 -> drop_entry t
    | _ -> perturb_entry t
  in
  canon entries

let of_string s =
  if String.trim s = "" then Ok empty
  else begin
    let items =
      String.split_on_char ',' s |> List.filter (fun x -> String.trim x <> "")
    in
    let parse_item item =
      let item = String.trim item in
      match String.index_opt item ':' with
      | None -> Error (Printf.sprintf "fault %S: expected kind:rate" item)
      | Some i -> (
          let kname = String.sub item 0 i in
          let rate_s = String.sub item (i + 1) (String.length item - i - 1) in
          match Kind.of_name kname with
          | None ->
              Error
                (Printf.sprintf "unknown fault kind %S (expected one of %s)"
                   kname known_names)
          | Some k -> (
              match float_of_string_opt rate_s with
              | None ->
                  Error
                    (Printf.sprintf "fault %s: rate %S is not a number" kname
                       rate_s)
              | Some r when not (Float.is_finite r) || r < 0.0 || r > 1.0 ->
                  Error
                    (Printf.sprintf "fault %s: rate %s out of [0, 1]" kname
                       rate_s)
              | Some r -> Ok (k, r)))
    in
    let rec go acc = function
      | [] -> Ok (canon (List.rev acc))
      | item :: rest -> (
          match parse_item item with
          | Error e -> Error e
          | Ok (k, _) when List.mem_assoc k acc ->
              Error (Printf.sprintf "fault %s given twice" (Kind.name k))
          | Ok kv -> go (kv :: acc) rest)
    in
    go [] items
  end

let of_string_exn s =
  match of_string s with Ok p -> p | Error e -> failwith e

let to_string t =
  String.concat ","
    (List.map (fun (k, r) -> Printf.sprintf "%s:%g" (Kind.name k) r) t)

let pp ppf t = Fmt.string ppf (to_string t)
