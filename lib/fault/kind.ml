(* Concrete fault kinds, each anchored at one injection site. Names
   double as the plan-grammar tokens (`drop-ring:0.01`). Kinds with a
   magnitude (delays, stalls, recovery timeouts) carry a fixed
   virtual-clock parameter: rates vary per plan, magnitudes are part of
   the model, so two plans with the same rates are comparable. *)

type t =
  | Drop_ring (* a posted command is silently lost *)
  | Dup_ring (* a posted command is delivered twice *)
  | Delay_ring (* delivery is delayed by a fixed virtual span *)
  | Corrupt_ring (* the serialized command code is smashed *)
  | Corrupt_vmcs12 (* a vmcs12 field is corrupted before the entry transform *)
  | Drop_irq (* a guest vector is lost before injection *)
  | Spurious_irq (* an extra, unsolicited vector is injected *)
  | Stall_blocked (* the SVT_BLOCKED handshake leg stalls *)

let all =
  [ Drop_ring; Dup_ring; Delay_ring; Corrupt_ring; Corrupt_vmcs12; Drop_irq;
    Spurious_irq; Stall_blocked ]

let n = List.length all

let index = function
  | Drop_ring -> 0
  | Dup_ring -> 1
  | Delay_ring -> 2
  | Corrupt_ring -> 3
  | Corrupt_vmcs12 -> 4
  | Drop_irq -> 5
  | Spurious_irq -> 6
  | Stall_blocked -> 7

let name = function
  | Drop_ring -> "drop-ring"
  | Dup_ring -> "dup-ring"
  | Delay_ring -> "delay-ring"
  | Corrupt_ring -> "corrupt-ring"
  | Corrupt_vmcs12 -> "corrupt-vmcs12"
  | Drop_irq -> "drop-irq"
  | Spurious_irq -> "spurious-irq"
  | Stall_blocked -> "stall-blocked"

let of_name s = List.find_opt (fun k -> name k = s) all

let site = function
  | Drop_ring | Dup_ring | Delay_ring | Corrupt_ring -> Site.Ring_send
  | Corrupt_vmcs12 -> Site.Vmcs12
  | Drop_irq | Spurious_irq -> Site.Irq
  | Stall_blocked -> Site.Blocked

(* Fixed virtual-clock magnitudes. A dropped IRQ is re-delivered only
   after the guest driver's own timeout/retransmit path kicks in, hence
   the much larger recovery span. *)
let param_ns = function
  | Delay_ring -> 2_000
  | Stall_blocked -> 5_000
  | Drop_irq -> 50_000
  | Drop_ring | Dup_ring | Corrupt_ring | Corrupt_vmcs12 | Spurious_irq -> 0

let pp ppf t = Fmt.string ppf (name t)
