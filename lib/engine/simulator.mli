(** Deterministic discrete-event simulator with effect-based processes.

    A simulation is a set of cooperative processes over a shared virtual
    clock. Processes are plain functions run with {!spawn}; inside a
    process, the operations in {!Proc} (and the synchronization primitives
    {!Ivar}, {!Signal}, {!Mailbox}) are the only ways to interact with
    virtual time. Exactly one process runs at any instant and control only
    transfers at those operations, so runs are fully deterministic. *)

type t

type sim = t
(** Alias for use inside the submodules below, whose own [t] shadows it. *)

exception Deadlock of string

(** Which fuel dimension ran out (with its configured limit). *)
type fuel = Fuel_events of int | Fuel_time of Time.t

exception Budget_exhausted of { events : int; now : Time.t; fuel : fuel }
(** Raised from {!step}/{!run} when the simulation exceeds the budget set
    with {!set_budget} (or [run]'s [max_events]). Deterministic: depends
    only on the event stream, never on the host clock, so a runaway run
    is cut at the same virtual instant on every machine. The payload is
    the run's fuel counters at the point of exhaustion. *)

(** Host-side dispatch hooks, called around every event callback while
    installed. Observers run on the host only: they must not schedule,
    cancel, or advance virtual time, so installing one can never change
    simulation results. Used by the self-profiler to segment host
    wall-clock and allocation between in-event work and engine
    bookkeeping. *)
type observer = {
  on_event_start : unit -> unit;
  on_event_end : unit -> unit;  (** fires even when the callback raises *)
}

val create : unit -> t
val now : t -> Time.t

val set_observer : t -> observer option -> unit
(** Install (or clear) the dispatch observer. The [None] state costs one
    match per event. *)

val queue_stats : t -> Event_queue.stats
(** Lifetime op counters of the event queue (adds / pops / cancels /
    peak live size). Deterministic: a pure function of the event
    stream. *)

val set_budget : ?max_events:int -> ?max_time:Time.t -> t -> unit
(** Install a run budget: processing more than [max_events] events, or
    reaching an event scheduled past [max_time], raises
    {!Budget_exhausted}. Omitted dimensions are unlimited; calling again
    replaces the budget. The check happens before an event is consumed,
    so the queue still holds the overrunning event. *)

val budget : t -> int option * Time.t option
(** The installed [(max_events, max_time)] budget. *)

val schedule : t -> after:Time.t -> (unit -> unit) -> Event_queue.handle
(** Run a callback [after] nanoseconds from now. Callbacks must not perform
    process effects; use {!spawn} for that. *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> Event_queue.handle
val cancel : t -> Event_queue.handle -> unit

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a process at the current instant. An exception escaping a process
    aborts the whole run (re-raised from {!run}/{!step}, tagged with
    [name]). *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events until the queue drains, [until] is passed, or
    [max_events] events have been processed by this call (which raises
    {!Budget_exhausted}, as a runaway guard). When [until] is given and
    the queue drains early, the clock still advances to [until]. *)

val step : t -> bool
(** Process one event; [false] if the queue was empty. Raises
    {!Budget_exhausted} if the {!set_budget} fuel is spent. *)

val events_processed : t -> int
val processes_spawned : t -> int
val pending_events : t -> int

val next_event_time : t -> Time.t option
(** The instant of the earliest pending event ([None] when the queue is
    empty). A host scheduler multiplexing several simulators over one
    shared clock uses this to tell a runnable guest (next event within
    the current quantum) from a sleeping one, whose slice can be skipped
    without running it. *)

(** Operations usable only inside a process spawned via {!spawn}. *)
module Proc : sig
  val now : unit -> Time.t
  val sim : unit -> sim

  val delay : Time.t -> unit
  (** Advance this process's clock by a span, letting other events run. *)

  val yield : unit -> unit
  (** Let already-queued events at the current instant run first. *)

  val suspend : (('a -> unit) -> unit) -> 'a
  (** [suspend register] parks the process; [register resume] must arrange
      for [resume v] to be called exactly once later, which makes [suspend]
      return [v]. *)

  val spawn : ?name:string -> (unit -> unit) -> unit
end

(** Write-once cell; readers block until it is filled. *)
module Ivar : sig
  type 'a t

  val create : sim -> 'a t

  val create_here : unit -> 'a t
  (** Like {!create} with the current process's simulator. *)

  val fill : 'a t -> 'a -> unit
  (** Fill the cell and wake all readers. Raises if already filled. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option

  val read : 'a t -> 'a
  (** Block (process-only) until filled. *)
end

(** Broadcast condition variable. *)
module Signal : sig
  type t

  val create : sim -> t
  val create_here : unit -> t

  val broadcast : t -> unit
  (** Wake every currently-blocked waiter. *)

  val has_waiters : t -> bool

  val wait : t -> unit
  (** Block (process-only) until the next {!broadcast}. *)

  val wait_any : t list -> unit
  (** Block until any of the signals broadcasts. *)

  val wait_timeout : t -> Time.t -> [ `Signaled | `Timeout ]
  (** Block until the next broadcast or until the span elapses. *)
end

(** Unbounded FIFO channel between processes. *)
module Mailbox : sig
  type 'a t

  val create : sim -> 'a t
  val create_here : unit -> 'a t

  val send : 'a t -> 'a -> unit

  val recv : 'a t -> 'a
  (** Block (process-only) until an item is available. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end
