(** Cancellable min-priority queue of timed events.

    Events with equal times are delivered in insertion (FIFO) order, which
    makes simulations deterministic. *)

type t
type handle

(** Lifetime op counts of a queue: enqueues, live (non-cancelled) pops,
    cancellations, and the high-water mark of live entries. Driven only
    by the deterministic event stream — identical across hosts and
    worker interleavings — so the profiler may read them freely without
    perturbing anything. *)
type stats = { adds : int; pops : int; cancels : int; peak_live : int }

val create : unit -> t

val stats : t -> stats

val add : t -> time:Time.t -> (unit -> unit) -> handle
(** Enqueue [run] to fire at [time]. *)

val cancel : t -> handle -> unit
(** Idempotent; a cancelled event is never returned by {!pop}. Safe on a
    handle whose event already fired (a no-op). *)

val is_cancelled : handle -> bool

val pop : t -> (Time.t * (unit -> unit)) option
(** Remove and return the earliest live event. *)

val peek_time : t -> Time.t option
(** Time of the earliest live event without removing it. *)

val is_empty : t -> bool

val length : t -> int
(** Number of live (non-cancelled) events. *)
