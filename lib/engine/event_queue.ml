(* Cancellable priority queue of timed events, ordered by (time, sequence
   number) so that events scheduled for the same instant run in FIFO order.
   Implemented as an array-based binary min-heap; cancellation is lazy (the
   entry is marked and skipped when popped), which keeps cancel O(1). *)

type entry = {
  time : Time.t;
  seq : int;
  run : unit -> unit;
  mutable cancelled : bool;
}

type handle = entry

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int; (* entries not cancelled *)
  (* Op counters for the engine-level profiler probe points. Plain ints
     driven only by the (deterministic) event stream, so they are free
     to read at any point and identical across hosts and worker
     interleavings. *)
  mutable adds : int;
  mutable pops : int;
  mutable cancels : int;
  mutable peak_live : int;
}

(* Lifetime op counts and high-water mark of a queue. *)
type stats = { adds : int; pops : int; cancels : int; peak_live : int }

let dummy_entry = { time = 0; seq = -1; run = ignore; cancelled = true }

let create () =
  { heap = Array.make 64 dummy_entry; size = 0; next_seq = 0; live = 0;
    adds = 0; pops = 0; cancels = 0; peak_live = 0 }

let stats (q : t) =
  { adds = q.adds; pops = q.pops; cancels = q.cancels; peak_live = q.peak_live }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let bigger = Array.make (2 * Array.length q.heap) dummy_entry in
  Array.blit q.heap 0 bigger 0 q.size;
  q.heap <- bigger

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time run =
  if q.size = Array.length q.heap then grow q;
  let e = { time; seq = q.next_seq; run; cancelled = false } in
  q.next_seq <- q.next_seq + 1;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  q.live <- q.live + 1;
  q.adds <- q.adds + 1;
  if q.live > q.peak_live then q.peak_live <- q.live;
  sift_up q (q.size - 1);
  e

let cancel q e =
  if not e.cancelled then begin
    e.cancelled <- true;
    q.live <- q.live - 1;
    q.cancels <- q.cancels + 1
  end

let is_cancelled e = e.cancelled

let pop_raw q =
  if q.size = 0 then None
  else begin
    let e = q.heap.(0) in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    q.heap.(q.size) <- dummy_entry;
    if q.size > 0 then sift_down q 0;
    Some e
  end

(* Pop the next non-cancelled event, discarding cancelled ones. A popped
   entry is marked cancelled so that a later [cancel] on its handle — a
   watchdog calling [cancel] on a deadline that already fired — is a
   no-op instead of corrupting the live count. *)
let rec pop q =
  match pop_raw q with
  | None -> None
  | Some e when e.cancelled -> pop q
  | Some e ->
      e.cancelled <- true;
      q.live <- q.live - 1;
      q.pops <- q.pops + 1;
      Some (e.time, e.run)

let rec peek_time q =
  if q.size = 0 then None
  else if q.heap.(0).cancelled then begin
    ignore (pop_raw q);
    peek_time q
  end
  else Some q.heap.(0).time

let is_empty q = q.live = 0
let length q = q.live
