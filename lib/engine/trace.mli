(** Bounded in-memory event trace: a ring of (time, tag, detail) entries,
    cheap enough to stay enabled in tests, where it doubles as an
    assertion surface for protocol ordering. *)

type entry = { time : Time.t; tag : string; detail : string }
type t

val create : ?capacity:int -> unit -> t
val set_enabled : t -> bool -> unit
val record : t -> time:Time.t -> tag:string -> string -> unit

val recordf :
  t -> time:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val iter : t -> (entry -> unit) -> unit
(** Visit retained entries oldest-first without allocating. *)

val to_list : t -> entry list
(** Oldest first; at most [capacity] entries are retained. *)

val total_recorded : t -> int
val find : t -> tag:string -> entry list
val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit
