(* Bounded in-memory event trace. Cheap enough to leave enabled in tests,
   where it doubles as an assertion surface for protocol ordering. *)

type entry = { time : Time.t; tag : string; detail : string }

type t = {
  capacity : int;
  entries : entry option array;
  mutable next : int;
  mutable total : int;
  mutable enabled : bool;
}

let create ?(capacity = 4096) () =
  { capacity; entries = Array.make capacity None; next = 0; total = 0;
    enabled = true }

let set_enabled t flag = t.enabled <- flag

let record t ~time ~tag detail =
  if t.enabled then begin
    t.entries.(t.next) <- Some { time; tag; detail };
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let recordf t ~time ~tag fmt = Format.kasprintf (record t ~time ~tag) fmt

(* Visit retained entries oldest-first without building a list; [find]
   and [dump] run on top of this with no intermediate allocation. *)
let iter t f =
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + i) mod t.capacity in
    match t.entries.(idx) with
    | Some e -> f e
    | None -> ()
  done

let to_list t =
  (* Oldest first. *)
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let total_recorded t = t.total

let find t ~tag =
  let acc = ref [] in
  iter t (fun e -> if e.tag = tag then acc := e :: !acc);
  List.rev !acc

let pp_entry ppf e =
  Fmt.pf ppf "[%a] %-20s %s" Time.pp e.time e.tag e.detail

let dump ppf t = iter t (fun e -> Fmt.pf ppf "%a@." pp_entry e)
