(* Discrete-event simulation core.

   Processes are ordinary OCaml functions executed under an effect handler
   (OCaml 5 one-shot continuations). A process interacts with virtual time
   only through the [Proc] operations below: [delay] advances its own clock
   by suspending until the event queue reaches the target instant, and
   [suspend] parks the process until some other party calls the provided
   resume function. Only one process runs at a time and control transfers
   happen exclusively at these points, so simulations are deterministic. *)

(* Host-side dispatch hooks for the self-profiler: called around every
   event callback when installed. Observers must not touch virtual time
   or the queue — they exist to let a profiler segment host wall-clock
   and allocation between "inside an event" and "engine bookkeeping".
   The None state costs one match per event. *)
type observer = {
  on_event_start : unit -> unit;
  on_event_end : unit -> unit;
}

type t = {
  mutable now : Time.t;
  queue : Event_queue.t;
  mutable error : exn option;
  mutable events_processed : int;
  mutable spawned : int;
  mutable budget_events : int option;
  mutable budget_time : Time.t option;
  mutable observer : observer option;
}

type sim = t

exception Deadlock of string

(* Deterministic fuel: exhaustion depends only on the event stream, never
   on the host clock, so the same run exhausts at the same instant on
   every machine. The payload records where the run stood when the fuel
   ran out (the campaign ledger keeps these counters). *)
type fuel = Fuel_events of int | Fuel_time of Time.t

exception Budget_exhausted of { events : int; now : Time.t; fuel : fuel }

let () =
  Printexc.register_printer (function
    | Budget_exhausted { events; now; fuel } ->
        Some
          (Printf.sprintf
             "Simulator.Budget_exhausted: %s (at %d events, t=%s)"
             (match fuel with
             | Fuel_events n -> Printf.sprintf "max_events=%d" n
             | Fuel_time t -> "max_time=" ^ Time.to_string t)
             events (Time.to_string now))
    | _ -> None)

type _ Effect.t +=
  | E_now : Time.t Effect.t
  | E_delay : Time.t -> unit Effect.t
  | E_suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | E_sim : t Effect.t

let create () =
  { now = Time.zero; queue = Event_queue.create (); error = None;
    events_processed = 0; spawned = 0; budget_events = None;
    budget_time = None; observer = None }

let now t = t.now
let set_observer t ob = t.observer <- ob
let queue_stats t = Event_queue.stats t.queue

let set_budget ?max_events ?max_time t =
  (match max_events with
  | Some n when n < 1 -> invalid_arg "Simulator.set_budget: max_events < 1"
  | _ -> ());
  t.budget_events <- max_events;
  t.budget_time <- max_time

let budget t = (t.budget_events, t.budget_time)

let schedule t ~after run =
  if after < 0 then invalid_arg "Simulator.schedule: negative delay";
  Event_queue.add t.queue ~time:(Time.add t.now after) run

let schedule_at t ~time run =
  if Time.(time < t.now) then invalid_arg "Simulator.schedule_at: past time";
  Event_queue.add t.queue ~time run

let cancel t h = Event_queue.cancel t.queue h

let spawn t ?(name = "proc") f =
  t.spawned <- t.spawned + 1;
  let body () =
    Effect.Deep.match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            if t.error = None then
              t.error <- Some (Failure (Printf.sprintf
                "process %S raised: %s" name (Printexc.to_string e))));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | E_now ->
                Some (fun (k : (a, _) Effect.Deep.continuation) ->
                    Effect.Deep.continue k t.now)
            | E_delay span ->
                Some (fun (k : (a, _) Effect.Deep.continuation) ->
                    ignore (schedule t ~after:span (fun () ->
                        Effect.Deep.continue k ())))
            | E_suspend register ->
                Some (fun (k : (a, _) Effect.Deep.continuation) ->
                    register (fun v -> Effect.Deep.continue k v))
            | E_sim ->
                Some (fun (k : (a, _) Effect.Deep.continuation) ->
                    Effect.Deep.continue k t)
            | _ -> None);
      }
  in
  ignore (schedule t ~after:Time.zero body)

let default_max_events = 200_000_000

(* Fuel check, performed before an event is consumed: the queue still
   holds the event that would overrun, so a handler catching the
   exception sees a consistent (merely truncated) simulation. *)
let check_budget t =
  (match t.budget_events with
  | Some limit
    when t.events_processed >= limit && not (Event_queue.is_empty t.queue) ->
      raise
        (Budget_exhausted
           { events = t.events_processed; now = t.now; fuel = Fuel_events limit })
  | _ -> ());
  match (t.budget_time, Event_queue.peek_time t.queue) with
  | Some limit, Some next when Time.(limit < next) ->
      raise
        (Budget_exhausted
           { events = t.events_processed; now = t.now; fuel = Fuel_time limit })
  | _ -> ()

let step t =
  check_budget t;
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, run) ->
      t.now <- time;
      t.events_processed <- t.events_processed + 1;
      (match t.observer with
      | None -> run ()
      | Some ob -> (
          ob.on_event_start ();
          (* the end hook fires even when the callback raises, so the
             profiler's in-event segmentation cannot wedge open *)
          match run () with
          | () -> ob.on_event_end ()
          | exception e ->
              ob.on_event_end ();
              raise e));
      (match t.error with Some e -> raise e | None -> ());
      true

let run ?until ?(max_events = default_max_events) t =
  let continue () =
    (match until with
    | Some limit -> (
        match Event_queue.peek_time t.queue with
        | Some next -> Time.(next <= limit)
        | None -> false)
    | None -> not (Event_queue.is_empty t.queue))
  in
  let before = t.events_processed in
  while continue () do
    if t.events_processed - before >= max_events then
      raise
        (Budget_exhausted
           { events = t.events_processed; now = t.now;
             fuel = Fuel_events max_events });
    ignore (step t)
  done;
  match until with
  | Some limit when Time.(t.now < limit) && Event_queue.is_empty t.queue ->
      t.now <- limit
  | _ -> ()

let events_processed t = t.events_processed
let processes_spawned t = t.spawned
let pending_events t = Event_queue.length t.queue

(* The instant of the earliest pending event. This is what lets an
   external scheduler share one clock across many simulators: a guest
   whose next event lies beyond the scheduling horizon is asleep and can
   have its slice skipped without running (or perturbing) it. *)
let next_event_time t = Event_queue.peek_time t.queue

module Proc = struct
  let now () = Effect.perform E_now
  let sim () = Effect.perform E_sim

  let delay span =
    if span < 0 then invalid_arg "Proc.delay: negative span";
    if span = 0 then () else Effect.perform (E_delay span)

  let yield () = Effect.perform (E_delay Time.zero)
  let suspend register = Effect.perform (E_suspend register)

  let spawn ?name f =
    let t = sim () in
    spawn t ?name f
end

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a ivar = { sim : t; mutable state : 'a state }
  type 'a t = 'a ivar

  let create sim = { sim; state = Empty [] }

  let create_here () =
    let sim = Proc.sim () in
    create sim

  let fill iv v =
    match iv.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        iv.state <- Full v;
        (* Resume waiters at the current instant, in FIFO order. *)
        List.iter
          (fun resume -> ignore (schedule iv.sim ~after:Time.zero
                                   (fun () -> resume v)))
          (List.rev waiters)

  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false
  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

  let read iv =
    match iv.state with
    | Full v -> v
    | Empty _ ->
        Proc.suspend (fun resume ->
            match iv.state with
            | Full v -> resume v
            | Empty waiters -> iv.state <- Empty (resume :: waiters))
end

module Signal = struct
  (* Broadcast condition variable with optional timeout on wait. *)
  type nonrec t = { sim : t; mutable waiters : (unit -> unit) list }

  let create sim = { sim; waiters = [] }

  let create_here () =
    let sim = Proc.sim () in
    create sim

  let broadcast s =
    let waiters = List.rev s.waiters in
    s.waiters <- [];
    List.iter
      (fun resume -> ignore (schedule s.sim ~after:Time.zero resume))
      waiters

  let has_waiters s = s.waiters <> []

  let wait s =
    Proc.suspend (fun resume -> s.waiters <- (fun () -> resume ()) :: s.waiters)

  (* Block until any of the given signals broadcasts. Waiter closures left
     registered on the other signals are guarded by a settled flag, so a
     later broadcast on those is a harmless no-op for this waiter. *)
  let wait_any signals =
    match signals with
    | [] -> invalid_arg "Signal.wait_any: no signals"
    | [ s ] -> wait s
    | _ ->
        Proc.suspend (fun resume ->
            let settled = ref false in
            let on_signal () =
              if not !settled then begin
                settled := true;
                resume ()
              end
            in
            List.iter (fun s -> s.waiters <- on_signal :: s.waiters) signals)

  let wait_timeout s span =
    Proc.suspend (fun resume ->
        let settled = ref false in
        let handle =
          schedule s.sim ~after:span (fun () ->
              if not !settled then begin
                settled := true;
                resume `Timeout
              end)
        in
        let on_signal () =
          if not !settled then begin
            settled := true;
            cancel s.sim handle;
            resume `Signaled
          end
        in
        s.waiters <- on_signal :: s.waiters)
end

module Mailbox = struct
  (* Unbounded FIFO channel between processes. *)
  type 'a mailbox = {
    sim : t;
    items : 'a Queue.t;
    mutable readers : ('a -> unit) list; (* at most one in practice *)
  }

  type 'a t = 'a mailbox

  let create sim = { sim; items = Queue.create (); readers = [] }

  let create_here () =
    let sim = Proc.sim () in
    create sim

  let send mb v =
    match mb.readers with
    | resume :: rest ->
        mb.readers <- rest;
        ignore (schedule mb.sim ~after:Time.zero (fun () -> resume v))
    | [] -> Queue.push v mb.items

  let recv mb =
    if not (Queue.is_empty mb.items) then Queue.pop mb.items
    else Proc.suspend (fun resume -> mb.readers <- mb.readers @ [ resume ])

  let try_recv mb =
    if Queue.is_empty mb.items then None else Some (Queue.pop mb.items)

  let length mb = Queue.length mb.items
end
