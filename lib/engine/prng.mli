(** Deterministic PRNG (xoshiro256++) and the distributions the simulator
    draws from. All randomness is explicitly threaded for reproducibility. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val of_seed : int64 -> t
(** Like {!create} but seeded from a full 64-bit value, e.g. a campaign
    run-id hash: each run derives an independent, reproducible stream
    regardless of the order runs are scheduled in. *)

val split : t -> t
(** Derive an independent stream (one per subsystem). Consumes parent
    state: the child depends on how many draws preceded it. *)

val split_seed : int64 -> index:int -> int64
(** Keyed splitting: the seed of child [index] of a parent seed. A pure
    function of [(parent, index)] — sibling streams are independent of
    each other and of creation order, so a subsystem can address child
    [i] directly without materializing children [0..i-1]. *)

val of_split : int64 -> index:int -> t
(** [of_seed (split_seed parent ~index)]: the child stream itself. The
    fault injector keys its per-kind streams this way, and the fuzzer its
    per-input streams. *)

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound), without modulo bias. *)

val int_in_range : t -> lo:int -> hi:int -> int
val bool : t -> bool
val bernoulli : t -> float -> bool

val exponential : t -> mean:float -> float
(** Mean-parameterized exponential; used for Poisson arrival gaps. *)

val normal : t -> mean:float -> stddev:float -> float
val pick : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit

(** Zipf-distributed ranks in [1, n]. *)
module Zipf : sig
  type dist

  val create : n:int -> s:float -> dist
  val draw : dist -> t -> int
end
