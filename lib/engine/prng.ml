(* Deterministic pseudo-random numbers: xoshiro256++ seeded via splitmix64.
   Every stochastic component of the simulator draws from an explicitly
   threaded generator so that experiments are reproducible bit-for-bit. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed seed64 =
  let state = ref seed64 in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let create seed = of_seed (Int64.of_int seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  (* Derive an independent generator; used to give each subsystem its own
     stream so adding draws in one place does not perturb another. *)
  let seed = Int64.to_int (next_int64 g) in
  create (seed land max_int)

(* Keyed splitting: child [index] of a parent *seed*. Unlike {!split},
   which consumes parent state (so children depend on draw order), the
   keyed form is a pure function of (parent, index): child i is the same
   stream whether or not children 0..i-1 were ever built, which is what
   per-kind fault streams and per-input fuzz streams need to stay
   replay-stable. Multiplying the index by an odd constant keeps sibling
   pre-mix states distinct; two splitmix64 rounds decorrelate them. *)
let split_seed parent ~index =
  let state =
    ref
      (Int64.logxor parent
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1))))
  in
  let (_ : int64) = splitmix64 state in
  splitmix64 state

let of_split parent ~index = of_seed (split_seed parent ~index)

(* Uniform float in [0, 1). Uses the top 53 bits. *)
let float g =
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int (bound - 1) in
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (next_int64 g) mask)
  else
    let rec draw () =
      let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 1) in
      let r = v mod bound in
      if v - r + (bound - 1) < 0 then draw () else r
    in
    draw ()

let int_in_range g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L
let bernoulli g p = float g < p

let exponential g ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential";
  -. mean *. log (1.0 -. float g)

let normal g ~mean ~stddev =
  (* Box–Muller; uses one of the pair for simplicity. *)
  let u1 = 1.0 -. float g and u2 = float g in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf-distributed ranks in [1, n] with exponent [s], via a precomputed
   cumulative table and binary search. Suits key-popularity skews like the
   Facebook ETC workload. *)
module Zipf = struct
  type dist = { cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for k = 1 to n do
      total := !total +. (1.0 /. Float.pow (float_of_int k) s);
      cdf.(k - 1) <- !total
    done;
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. !total
    done;
    { cdf }

  let draw dist g =
    let u = float g in
    let cdf = dist.cdf in
    let lo = ref 0 and hi = ref (Array.length cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1
end
