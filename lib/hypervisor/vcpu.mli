(** A virtual CPU: the execution vehicle for guest programs.

    The guest program runs as a simulator process (see
    {!spawn_program}); every privileged operation it performs goes
    through the [privileged] hook, which the system wiring
    ([Svt_core.System]) points at the trap path of the active run mode.
    Interrupts arrive asynchronously — devices and timers raise LAPIC
    vectors or enqueue host-side events — and are drained at
    interruptible points (compute slices, HLT), where a real CPU would
    recognize them. *)

type t

(** Host-scheduler view of the vCPU: a stand-alone stack is always
    [Running] (it owns its whole machine); a host scheduler flips
    Running/Runnable at grant/preempt boundaries, and the vCPU itself
    reports [Blocked] for the duration of the architectural HLT wait. *)
type run_state = Runnable | Running | Blocked

val run_state_name : run_state -> string

val create :
  machine:Machine.t ->
  vm:Vm.t ->
  index:int ->
  core_id:int ->
  hw_ctx:int ->
  t

(** {2 Identity and state} *)

val machine : t -> Machine.t
val vm : t -> Vm.t
val index : t -> int
val core_id : t -> int

val core : t -> Svt_arch.Smt_core.t
(** The physical core this vCPU is pinned to. *)

val hw_ctx : t -> int
(** The hardware context holding this level's register state (context 2
    under HW SVt, context 0 otherwise). *)

val set_hw_ctx : t -> int -> unit
val lapic : t -> Svt_interrupt.Lapic.t
val msrs : t -> Svt_arch.Msr.File.t
val msr_bitmap : t -> Svt_arch.Msr.Bitmap.t

val breakdown : t -> Breakdown.t
(** Where every nanosecond of this vCPU's trap handling is charged. *)

val is_halted : t -> bool
val guest_time : t -> Svt_engine.Time.t
val halted_time : t -> Svt_engine.Time.t

val run_state : t -> run_state
val set_run_state : t -> run_state -> unit

val note_steal : t -> Svt_engine.Time.t -> unit
(** Charge a span of runnable-but-off-cpu time (host scheduler only). *)

val steal_time : t -> Svt_engine.Time.t
val name : t -> string
val wake_signal : t -> Svt_engine.Simulator.Signal.t

(** {2 Wiring hooks (set by the system builder)} *)

val set_privileged : t -> (t -> Exit.info -> unit) -> unit
(** The trap path: invoked for every privileged guest operation. *)

val set_deliver_guest_irq : t -> (t -> int -> unit) -> unit
(** Delivery of a guest-visible LAPIC vector (charges the injection
    episodes, runs the registered ISR, EOIs). *)

val set_deliver_host_event : t -> (t -> vector:int -> work:(unit -> unit) -> unit) -> unit
(** Delivery of a host-side event (an interrupt for the L1 hypervisor
    running under this vCPU's thread). *)

val register_isr : t -> vector:int -> (unit -> unit) -> unit
(** Guest-side interrupt handler, run in the vCPU process on delivery. *)

val isr_handler : t -> int -> (unit -> unit) option

(** {2 Execution (vCPU-process context)} *)

val trap : t -> Exit.info -> unit
(** Perform a privileged operation through the wired trap path. *)

val compute : t -> Svt_engine.Time.t -> unit
(** Straight-line guest computation, interruptible by pending events and
    scaled by the core's SMT interference factor. *)

val wait_for_interrupt : t -> unit
(** Idle (the architectural HLT state) until an interrupt or host event
    arrives, then drain it. *)

val drain : t -> unit
(** Deliver everything pending: host events first, then LAPIC vectors. *)

val pending : t -> bool

(** {2 Host-side events} *)

val enqueue_host_event : t -> vector:int -> (unit -> unit) -> unit
(** Queue work that needs this vCPU's physical CPU (e.g. an external
    interrupt destined for L1); runs at the next interruptible point. *)

val take_host_event : t -> ((unit -> unit) -> unit) -> bool
(** Pop one raw host event and hand it to [service] (the SW SVt blocked-
    wait loop uses this to run events through the SVT_BLOCKED path);
    [false] when none is pending. *)

val spawn_program : t -> (t -> unit) -> unit
(** Start the guest program as this vCPU's simulator process. *)
