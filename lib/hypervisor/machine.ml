(* The physical host: the paper's Table 4 testbed (2× Xeon E5-2630v3,
   8 cores each, 2-way SMT, 128 GB RAM, 10 GbE) as simulated resources. *)

module Simulator = Svt_engine.Simulator
module Time = Svt_engine.Time

type config = {
  sockets : int;
  cores_per_socket : int;
  smt_per_core : int;
  ram_gb : int;
  seed : int;
  arch : Svt_arch.Backend.kind;
  cost : Svt_arch.Cost_model.t;
}

let paper_config =
  {
    sockets = 2;
    cores_per_socket = 8;
    smt_per_core = 2;
    ram_gb = 128;
    seed = 0x5EED;
    arch = Svt_arch.Backend.X86;
    cost = Svt_arch.Cost_model.paper_machine;
  }

(* The same testbed topology re-targeted at another ISA: the cost table
   follows the backend, everything else (sockets, seed, RAM) is the
   caller's to keep. *)
let retarget kind config =
  { config with arch = kind; cost = Svt_arch.Backend.cost_of kind }

let arm_config = retarget Svt_arch.Backend.Arm paper_config

type t = {
  sim : Simulator.t;
  config : config;
  cost : Svt_arch.Cost_model.t;
  mem : Svt_mem.Phys_mem.t;
  alloc : Svt_mem.Frame_alloc.t;
  cores : Svt_arch.Smt_core.t array;
  host_cpuid : Svt_arch.Cpuid_db.t;
  metrics : Svt_stats.Metrics.t;
  obs : Svt_obs.Recorder.t;
  rng : Svt_engine.Prng.t;
}

let create ?(config = paper_config) () =
  let sim = Simulator.create () in
  let n_cores = config.sockets * config.cores_per_socket in
  {
    sim;
    config;
    cost = config.cost;
    mem = Svt_mem.Phys_mem.create ();
    (* Reserve low memory for the host; guests draw frames above 1 GB. *)
    alloc =
      Svt_mem.Frame_alloc.create ~base:(1 lsl 30)
        ~size_bytes:(config.ram_gb * (1 lsl 30));
    cores =
      Array.init n_cores (fun id ->
          Svt_arch.Smt_core.create ~id ~n_contexts:config.smt_per_core ());
    host_cpuid = Svt_arch.Cpuid_db.host ();
    metrics = Svt_stats.Metrics.create ();
    obs = Svt_obs.Recorder.create ~clock:(fun () -> Simulator.now sim) ();
    rng = Svt_engine.Prng.create config.seed;
  }

let sim t = t.sim
let cost t = t.cost
let arch t = t.config.arch
let core t i = t.cores.(i)
let n_cores t = Array.length t.cores

(* NUMA node of a core, for the channel-placement experiments. *)
let numa_node t core_id = core_id / t.config.cores_per_socket
let same_numa t a b = numa_node t a = numa_node t b

let now t = Simulator.now t.sim

let obs t = t.obs
let probe t = Svt_obs.Recorder.probe t.obs

(* Formatted text annotation; kept as the cheap always-available surface,
   now one sink of the obs layer (the bounded Trace ring underneath). *)
let trace t ~tag fmt = Svt_obs.Recorder.annotate t.obs ~tag fmt
