(* A virtual CPU: the execution vehicle for guest programs.

   The guest program runs as a simulator process; every privileged
   operation it performs goes through the [privileged] hook, which the
   system wiring (lib/core) points at the trap-handling path for the
   active run mode. Interrupts arrive asynchronously: devices and timers
   raise LAPIC vectors or enqueue host-side events, and the vCPU drains
   them at interruptible points (compute slices, HLT), exactly where a
   real CPU would recognize them. *)

module Time = Svt_engine.Time
module Simulator = Svt_engine.Simulator
module Proc = Simulator.Proc
module Signal = Simulator.Signal
module Lapic = Svt_interrupt.Lapic
module Smt_core = Svt_arch.Smt_core

(* Host-scheduler view of the vCPU. A stand-alone stack is always
   [Running] (it owns its whole machine); under lib/sched the host flips
   Running/Runnable at grant/preempt boundaries, while the vCPU itself
   reports Blocked during the architectural HLT wait. *)
type run_state = Runnable | Running | Blocked

let run_state_name = function
  | Runnable -> "runnable"
  | Running -> "running"
  | Blocked -> "blocked"

type t = {
  machine : Machine.t;
  vm : Vm.t;
  index : int;
  core_id : int; (* pinned physical core *)
  mutable hw_ctx : int; (* hardware context hosting this level's state *)
  lapic : Lapic.t;
  msrs : Svt_arch.Msr.File.t;
  msr_bitmap : Svt_arch.Msr.Bitmap.t;
  wake : Signal.t;
  mutable halted : bool;
  mutable run_state : run_state;
  mutable steal_ns : int; (* runnable but off-cpu, charged by the host *)
  mutable privileged : t -> Exit.info -> unit;
  mutable deliver_guest_irq : t -> int -> unit;
  mutable deliver_host_event : t -> vector:int -> work:(unit -> unit) -> unit;
  host_events : (int * (unit -> unit)) Queue.t;
  isr : (int, unit -> unit) Hashtbl.t;
  breakdown : Breakdown.t;
  mutable guest_ns : int; (* nominal guest compute time *)
  mutable halted_ns : int; (* time spent idle in HLT *)
}

let default_privileged _ (info : Exit.info) =
  failwith
    (Printf.sprintf "Vcpu: no trap path wired for %s"
       (Svt_arch.Exit_reason.name info.reason))

let default_deliver _ vector =
  failwith (Printf.sprintf "Vcpu: no interrupt delivery wired (vector %d)" vector)

let default_deliver_host _ ~vector ~work =
  ignore vector;
  (* with no hypervisor interposition wired, just run the event *)
  work ()

let create ~machine ~vm ~index ~core_id ~hw_ctx =
  let sim = Machine.sim machine in
  let t =
    {
      machine;
      vm;
      index;
      core_id;
      hw_ctx;
      lapic = Lapic.create sim ~id:((Vm.level vm * 100) + index);
      msrs = Svt_arch.Msr.File.create ();
      msr_bitmap = Svt_arch.Msr.Bitmap.kvm_default ();
      wake = Signal.create sim;
      halted = false;
      run_state = Running;
      steal_ns = 0;
      privileged = default_privileged;
      deliver_guest_irq = default_deliver;
      deliver_host_event = default_deliver_host;
      host_events = Queue.create ();
      isr = Hashtbl.create 8;
      breakdown = Breakdown.create ();
      guest_ns = 0;
      halted_ns = 0;
    }
  in
  Lapic.set_on_pending t.lapic (fun _vector -> Signal.broadcast t.wake);
  Vm.add_vcpu_internal vm;
  t

let machine t = t.machine
let vm t = t.vm
let index t = t.index
let core_id t = t.core_id
let core t = Machine.core t.machine t.core_id
let hw_ctx t = t.hw_ctx
let set_hw_ctx t ctx = t.hw_ctx <- ctx
let lapic t = t.lapic
let msrs t = t.msrs
let msr_bitmap t = t.msr_bitmap
let breakdown t = t.breakdown
let is_halted t = t.halted
let guest_time t = Time.of_ns t.guest_ns
let halted_time t = Time.of_ns t.halted_ns
let run_state t = t.run_state
let set_run_state t s = t.run_state <- s
let note_steal t span = t.steal_ns <- t.steal_ns + Time.to_ns span
let steal_time t = Time.of_ns t.steal_ns
let name t = Printf.sprintf "%s/vcpu%d" (Vm.name t.vm) t.index

let set_privileged t f = t.privileged <- f
let set_deliver_guest_irq t f = t.deliver_guest_irq <- f
let set_deliver_host_event t f = t.deliver_host_event <- f
let wake_signal t = t.wake
let register_isr t ~vector f = Hashtbl.replace t.isr vector f
let isr_handler t vector = Hashtbl.find_opt t.isr vector

(* Perform a privileged operation: trap into the hypervisor stack. *)
let trap t info = t.privileged t info

let pending t = (not (Queue.is_empty t.host_events)) || Lapic.has_pending t.lapic

(* Host-side events are closures that need the vCPU's physical CPU (e.g.
   an external interrupt destined for the L1 hypervisor running under this
   vCPU's thread): they run in the vCPU process at the next interruptible
   point, charging whatever costs they model. *)
let enqueue_host_event t ~vector work =
  Queue.add (vector, work) t.host_events;
  Signal.broadcast t.wake

(* Pop one raw host event for a caller that wants to service it through a
   special path (the SW SVt blocked-wait loop); [false] when none. *)
let take_host_event t service =
  match Queue.take_opt t.host_events with
  | Some (_vector, work) ->
      service work;
      true
  | None -> false

(* Drain pending work: host events first (they model higher-priority
   physical interrupts), then guest-visible LAPIC vectors. *)
let rec drain t =
  match Queue.take_opt t.host_events with
  | Some (vector, work) ->
      t.deliver_host_event t ~vector ~work;
      drain t
  | None -> (
      match Lapic.ack t.lapic with
      | Some vector ->
          t.deliver_guest_irq t vector;
          drain t
      | None -> ())

(* Straight-line guest computation, interruptible by pending events. The
   span is scaled by the SMT interference factor of the pinned core (a
   polling sibling steals issue slots — §6.1). *)
let compute t span =
  if Time.(span > Time.zero) then begin
    let total = Smt_core.scale_compute (core t) span in
    t.guest_ns <- t.guest_ns + Time.to_ns span;
    let rec go remaining =
      drain t;
      if Time.(remaining > Time.zero) then begin
        let started = Proc.now () in
        match Signal.wait_timeout t.wake remaining with
        | `Timeout -> Breakdown.note t.breakdown Breakdown.L2_guest remaining
        | `Signaled ->
            let ran = Time.diff (Proc.now ()) started in
            Breakdown.note t.breakdown Breakdown.L2_guest ran;
            go (Time.sub remaining ran)
      end
    in
    go total;
    drain t
  end
  else drain t

(* Idle until an interrupt or host event arrives (the architectural HLT
   state; the HLT *exit* is taken by the caller before idling). *)
let wait_for_interrupt t =
  let started = Proc.now () in
  t.halted <- true;
  let before = t.run_state in
  t.run_state <- Blocked;
  while not (pending t) do
    Signal.wait t.wake
  done;
  t.halted <- false;
  t.run_state <- before;
  t.halted_ns <- t.halted_ns + Time.to_ns (Time.diff (Proc.now ()) started);
  Svt_obs.Probe.span (Machine.probe t.machine) Svt_obs.Span.Halt
    ~vcpu:t.index ~level:(Vm.level t.vm) ~core:t.core_id ~ctx:t.hw_ctx
    ~start:started ();
  drain t

(* Spawn the guest program as this vCPU's process. *)
let spawn_program t f =
  Simulator.spawn (Machine.sim t.machine) ~name:(name t) (fun () -> f t)
