(** The simulated physical host: the paper's Table 4 testbed (2× Xeon
    E5-2630v3, 8 cores each, 2-way SMT, 128 GB RAM, 10 GbE). Owns the
    simulator, the cost model, host memory, the SMT cores and the global
    metrics registry. *)

type config = {
  sockets : int;
  cores_per_socket : int;
  smt_per_core : int;
  ram_gb : int;
  seed : int;  (** PRNG seed: equal seeds give bit-identical simulations *)
  arch : Svt_arch.Backend.kind;
  cost : Svt_arch.Cost_model.t;
}

val paper_config : config
(** Table 4 with the calibrated {!Svt_arch.Cost_model.paper_machine}
    (arch [X86]). *)

val retarget : Svt_arch.Backend.kind -> config -> config
(** The same topology re-targeted at another ISA: [arch] and [cost]
    follow the backend, everything else is preserved. *)

val arm_config : config
(** {!paper_config} re-targeted at the ARM NV/VHE backend. *)

type t = {
  sim : Svt_engine.Simulator.t;
  config : config;
  cost : Svt_arch.Cost_model.t;
  mem : Svt_mem.Phys_mem.t;
  alloc : Svt_mem.Frame_alloc.t;
  cores : Svt_arch.Smt_core.t array;
  host_cpuid : Svt_arch.Cpuid_db.t;
  metrics : Svt_stats.Metrics.t;
  obs : Svt_obs.Recorder.t;
  rng : Svt_engine.Prng.t;
}

val create : ?config:config -> unit -> t
val sim : t -> Svt_engine.Simulator.t
val cost : t -> Svt_arch.Cost_model.t

(** The machine's architecture backend. *)
val arch : t -> Svt_arch.Backend.kind
val core : t -> int -> Svt_arch.Smt_core.t
val n_cores : t -> int

val numa_node : t -> int -> int
(** NUMA node of a core, for the channel-placement experiments. *)

val same_numa : t -> int -> int -> bool
val now : t -> Svt_engine.Time.t

val obs : t -> Svt_obs.Recorder.t
(** The machine's observability recorder (no sinks installed by
    default). *)

val probe : t -> Svt_obs.Probe.t
(** Shorthand for [Svt_obs.Recorder.probe (obs t)] — what the
    instrumented trap paths emit spans through. *)

val trace :
  t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record a formatted entry in the machine's bounded annotation ring
    (the obs layer's text sink). *)
